"""Testbench generation, validation tightening, flow hook, golden files."""

from __future__ import annotations

import os

import numpy as np
import pytest

from helpers import half_adder_netlist, popcount_netlist

from repro.circuits.builder import LogicBuilder
from repro.circuits.library import umc_ll_library
from repro.circuits.netlist import Cell
from repro.circuits.validate import check_connectivity
from repro.datapath.datapath import DatapathConfig, DualRailDatapath
from repro.hdl import emit_verilog, export_netlist, generate_datapath_testbench, generate_testbench
from repro.synth.flow import HdlExportOptions, synthesize
from repro.synth.reports import area_report, leakage_report
from repro.tm.inference import InferenceModel

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_half_adder.v")


class TestGenericTestbench:
    def test_testbench_is_self_checking_and_deterministic(self):
        netlist = half_adder_netlist()
        first = generate_testbench(netlist, num_vectors=8)
        second = generate_testbench(netlist, num_vectors=8)
        assert first == second
        assert "TESTBENCH PASSED" in first
        assert "TESTBENCH FAILED" in first
        assert "$finish;" in first
        assert first.count("// vector ") == 8

    def test_explicit_stimulus_is_respected(self):
        builder = LogicBuilder("tiny")
        a, b = builder.input("a"), builder.input("b")
        builder.output("y", builder.and_(a, b))
        text = generate_testbench(
            builder.netlist, stimulus={"a": [1, 1], "b": [0, 1]}
        )
        assert "(expected 0)" in text
        assert "(expected 1)" in text

    def test_unknown_goldens_are_skipped_not_checked(self):
        builder = LogicBuilder("latchy")
        a = builder.input("a")
        # C-element against a constant never resolves for a != const.
        c = builder.c_element(a, builder.tie(1))
        builder.output("y", c)
        text = generate_testbench(builder.netlist, stimulus={"a": [0]})
        assert "unknown in golden model; not checked" in text

    def test_ragged_stimulus_is_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            generate_testbench(half_adder_netlist(),
                               stimulus={"a_p": [0], "a_n": [1, 0]})


class TestDatapathTestbench:
    @pytest.fixture(scope="class")
    def datapath(self):
        config = DatapathConfig(num_features=3, clauses_per_polarity=4)
        return DualRailDatapath(config)

    def test_handshake_testbench_checks_both_phases(self, datapath):
        model = InferenceModel.random(
            datapath.config.num_clauses, datapath.config.num_features, seed=5
        )
        text = generate_datapath_testbench(datapath, model, num_operands=4)
        assert text.count("// operand ") == 4
        assert "spacer phase" in text
        assert "valid phase" in text
        assert "expected verdict" in text
        # done is checked low at spacer and high at valid.
        assert "net done = %b (expected 0)" in text
        assert "net done = %b (expected 1)" in text

    def test_golden_cross_check_rejects_wrong_model(self, datapath):
        model = InferenceModel.random(
            datapath.config.num_clauses, datapath.config.num_features, seed=5
        )
        wrong = InferenceModel(np.logical_not(model.exclude))
        with pytest.raises(ValueError, match="golden mismatch"):
            generate_datapath_testbench(datapath, wrong, exclude=model.exclude,
                                        num_operands=8)


class TestConnectivityValidation:
    def test_clean_netlist_passes(self):
        assert check_connectivity(half_adder_netlist()).ok

    def test_dangling_net_is_an_error(self):
        netlist = half_adder_netlist()
        netlist.get_net("floater")
        report = check_connectivity(netlist)
        assert any("dangling" in e and "floater" in e for e in report.errors)

    def test_multiply_driven_net_is_an_error(self):
        netlist = half_adder_netlist()
        victim = next(iter(netlist.cells.values()))
        rogue = Cell(name="rogue", cell_type="INV",
                     inputs={"A": netlist.primary_inputs[0]},
                     outputs={"Y": victim.output_nets()[0]})
        netlist.cells["rogue"] = rogue
        report = check_connectivity(netlist)
        assert any("multiply driven" in e for e in report.errors)

    def test_stale_driver_bookkeeping_is_an_error(self):
        netlist = half_adder_netlist()
        net = netlist.nets[next(iter(netlist.cells.values())).output_nets()[0]]
        net.driver = ("ghost", "Y")
        report = check_connectivity(netlist)
        assert any("ghost" in e for e in report.errors)


class TestSynthesizeExportHook:
    def test_export_directory_shorthand(self, tmp_path):
        library = umc_ll_library()
        result = synthesize(
            popcount_netlist(5), library, enforce_unate=True,
            export=str(tmp_path / "rtl"),
        )
        assert result.hdl is not None
        assert result.hdl.verified
        for path in result.hdl.paths.values():
            assert os.path.exists(path)
        design = open(result.hdl.paths["design"], encoding="utf-8").read()
        assert design == emit_verilog(result.netlist)

    def test_export_options_in_memory(self):
        library = umc_ll_library()
        options = HdlExportOptions(directory=None, testbench_vectors=4,
                                   roundtrip_vectors=32)
        result = synthesize(popcount_netlist(3), library, export=options)
        assert result.hdl.paths == {}
        assert result.hdl.verified
        assert "TESTBENCH PASSED" in result.hdl.testbench

    def test_export_refuses_invalid_netlists(self):
        library = umc_ll_library()
        netlist = half_adder_netlist()
        netlist.get_net("floater")
        with pytest.raises(ValueError, match="refusing HDL export"):
            synthesize(netlist, library, export=HdlExportOptions())

    def test_no_export_by_default(self):
        result = synthesize(popcount_netlist(3), umc_ll_library())
        assert result.hdl is None


class TestGoldenFileStability:
    def test_half_adder_matches_checked_in_golden_file(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = handle.read()
        assert emit_verilog(half_adder_netlist()) == golden

    def test_export_bundle_is_deterministic(self):
        first = export_netlist(popcount_netlist(3), testbench_vectors=4,
                               roundtrip_vectors=16)
        second = export_netlist(popcount_netlist(3), testbench_vectors=4,
                                roundtrip_vectors=16)
        assert first.design == second.design
        assert first.primitives == second.primitives
        assert first.testbench == second.testbench


class TestReportDeterminism:
    def test_reports_and_emission_reproducible_across_builds(self):
        library = umc_ll_library()
        config = DatapathConfig(num_features=2, clauses_per_polarity=2)

        def snapshot():
            netlist = DualRailDatapath(config, library=library).circuit.netlist
            area = area_report(netlist, library)
            leak = leakage_report(netlist, library)
            return (
                emit_verilog(netlist),
                area.total, area.sequential, tuple(area.by_type.items()),
                leak.total_nw, tuple(leak.by_type.items()),
            )

        assert snapshot() == snapshot()
