// Design: ha_block
// Structural Verilog emitted by repro.hdl.verilog (deterministic).
// cells=8 nets=12 inputs=4 outputs=4

module ha_block(
  input a_p,
  input a_n,
  input b_p,
  input b_n,
  output s_p,
  output s_n,
  output c_p,
  output c_n
);

  wire ao22_0;
  wire ao22_1;
  wire and2_2;
  wire or2_3;

  AO22 u$ao22_0 (.A1(a_p), .A2(b_n), .B1(a_n), .B2(b_p), .Y(ao22_0));
  AO22 u$ao22_1 (.A1(a_p), .A2(b_p), .B1(a_n), .B2(b_n), .Y(ao22_1));
  AND2 u$and2_2 (.A(a_p), .B(b_p), .Y(and2_2));
  OR2 u$or2_3 (.A(a_n), .B(b_n), .Y(or2_3));
  BUF u$buf_4 (.A(ao22_0), .Y(s_p));
  BUF u$buf_5 (.A(ao22_1), .Y(s_n));
  BUF u$buf_6 (.A(and2_2), .Y(c_p));
  BUF u$buf_7 (.A(or2_3), .Y(c_n));
endmodule
