"""Emitter-level tests: determinism, identifiers, validation, primitives."""

from __future__ import annotations

import pytest

from helpers import half_adder_netlist, popcount_netlist

from repro.circuits.builder import LogicBuilder
from repro.circuits.gates import GATE_REGISTRY
from repro.circuits.netlist import Netlist
from repro.datapath.datapath import DatapathConfig, DualRailDatapath
from repro.hdl import (
    VerilogEmissionError,
    emit_primitives,
    emit_verilog,
    partition_by_attr,
    primitive_module,
    primitives_for_netlist,
    verilog_identifier,
)


class TestIdentifiers:
    def test_plain_names_pass_through(self):
        assert verilog_identifier("nand2_17") == "nand2_17"

    def test_bus_style_names_are_escaped_with_trailing_space(self):
        assert verilog_identifier("f[0]_p") == "\\f[0]_p "

    def test_keywords_are_escaped(self):
        assert verilog_identifier("wire") == "\\wire "
        assert verilog_identifier("buf") == "\\buf "

    def test_whitespace_names_are_rejected(self):
        with pytest.raises(VerilogEmissionError):
            verilog_identifier("a b")


class TestDeterminism:
    def test_same_build_emits_identical_bytes(self):
        first = emit_verilog(popcount_netlist(5))
        second = emit_verilog(popcount_netlist(5))
        assert first == second

    def test_datapath_emission_is_reproducible(self):
        config = DatapathConfig(num_features=2, clauses_per_polarity=2)
        texts = {
            emit_verilog(DualRailDatapath(config).circuit.netlist) for _ in range(2)
        }
        assert len(texts) == 1

    def test_emitting_twice_from_one_netlist_is_stable(self):
        netlist = half_adder_netlist()
        assert emit_verilog(netlist) == emit_verilog(netlist)


class TestEmission:
    def test_escaped_rail_names_appear_in_ports(self):
        config = DatapathConfig(num_features=2, clauses_per_polarity=2)
        text = emit_verilog(DualRailDatapath(config).circuit.netlist)
        assert "input \\f[0]_p ," in text
        assert "output verdict_less" in text

    def test_every_cell_becomes_one_instance(self):
        netlist = half_adder_netlist()
        text = emit_verilog(netlist)
        for cell in netlist.iter_cells():
            assert f"{cell.cell_type} " in text
        assert text.count(";") >= netlist.cell_count()

    def test_pi_po_overlap_is_rejected(self):
        netlist = Netlist("feedthrough")
        netlist.add_input("x")
        netlist.add_output("x")
        with pytest.raises(VerilogEmissionError, match="both primary inputs"):
            emit_verilog(netlist)

    def test_dangling_net_is_rejected_with_actionable_message(self):
        builder = LogicBuilder("dangling")
        a = builder.input("a")
        builder.output("y", builder.not_(a))
        builder.netlist.get_net("orphan")
        with pytest.raises(VerilogEmissionError, match="orphan.*dangling"):
            emit_verilog(builder.netlist)

    def test_check_false_skips_validation(self):
        builder = LogicBuilder("dangling2")
        a = builder.input("a")
        builder.output("y", builder.not_(a))
        builder.netlist.get_net("orphan")
        assert "module dangling2" in emit_verilog(builder.netlist, check=False)


class TestHierarchy:
    def test_datapath_blocks_become_submodules(self):
        config = DatapathConfig(num_features=2, clauses_per_polarity=2)
        netlist = DualRailDatapath(config).circuit.netlist
        blocks = partition_by_attr(netlist)
        assert set(blocks) == {
            "latches", "clauses_pos", "clauses_neg", "popcount_pos",
            "popcount_neg", "comparator", "completion",
        }
        text = emit_verilog(netlist, blocks=blocks)
        for block in blocks:
            assert f"module {netlist.name}__{block}(" in text
        assert text.count("module ") == len(blocks) + 1

    def test_blocks_must_be_disjoint(self):
        netlist = half_adder_netlist()
        cell = next(iter(netlist.cells))
        with pytest.raises(VerilogEmissionError, match="disjoint"):
            emit_verilog(netlist, blocks={"a": [cell], "b": [cell]})


class TestPrimitives:
    def test_every_registry_cell_has_a_model(self):
        for cell_type in GATE_REGISTRY:
            text = primitive_module(cell_type)
            assert text.startswith(f"module {cell_type} (")
            assert text.rstrip().endswith("endmodule")

    def test_emission_is_sorted_and_stable(self):
        assert emit_primitives() == emit_primitives()
        text = emit_primitives(["NAND2", "AND2", "NAND2"])
        assert text.index("module AND2") < text.index("module NAND2")
        assert text.count("module NAND2") == 1

    def test_primitives_for_netlist_covers_used_types_only(self):
        netlist = half_adder_netlist()
        text = primitives_for_netlist(netlist)
        for cell_type in {c.cell_type for c in netlist.iter_cells()}:
            assert f"module {cell_type} (" in text
        assert "module DFF" not in text

    def test_combinational_expressions_match_gate_specs(self):
        """The emitted ``assign`` of every combinational cell computes the
        same Boolean function as the Python GateSpec, over all input combos.

        The Verilog expression is interpreted with Python's bitwise
        operators (the emitter only ever inverts at the outermost level, so
        a final ``& 1`` mask is exact).
        """
        import itertools
        import re as _re

        for cell_type, spec in GATE_REGISTRY.items():
            if spec.sequential:
                continue
            text = primitive_module(cell_type)
            expr = _re.search(r"assign Y = (.+);", text).group(1)
            expr = expr.replace("1'b", "")
            for values in itertools.product((0, 1), repeat=spec.num_inputs):
                env = dict(zip(spec.input_pins, values))
                got = eval(expr, {"__builtins__": {}}, dict(env)) & 1
                want = spec.evaluate(env, None)["Y"]
                assert got == want, (cell_type, env, got, want)

    def test_c_element_model_holds_state(self):
        text = primitive_module("C2")
        assert "output reg Y" in text
        assert "always @*" in text

    def test_dff_model_is_edge_triggered(self):
        assert "posedge CK" in primitive_module("DFF")
