"""Round-trip acceptance tests: emit → parse → equivalence, byte stability.

Every datapath block must survive the loop at two or more widths:
the emitted Verilog re-parses into a netlist that the batch backend proves
gate-for-gate equivalent to the source on 256 random vectors, and
re-emitting the parsed netlist reproduces the original bytes exactly.
"""

from __future__ import annotations

import pytest

from helpers import (
    clause_netlist,
    comparator_netlist,
    full_adder_netlist,
    half_adder_netlist,
    popcount_netlist,
)

from repro.circuits.library import full_diffusion_library, umc_ll_library
from repro.datapath.datapath import DatapathConfig, DualRailDatapath
from repro.datapath.sync_datapath import SingleRailDatapath
from repro.hdl import (
    VerilogParseError,
    check_equivalence,
    emit_verilog,
    netlist_from_verilog,
    parse_verilog,
    partition_by_attr,
    verify_roundtrip,
)
from repro.synth.mapping import map_to_library

VECTORS = 256


def assert_roundtrip(netlist, vectors=VECTORS):
    report = verify_roundtrip(netlist, vectors=vectors)
    assert report.equivalence.equivalent, report.equivalence.mismatches
    assert report.byte_stable
    assert report.ok
    return report


class TestBlockRoundTrips:
    def test_half_adder(self):
        assert_roundtrip(half_adder_netlist())

    def test_full_adder(self):
        assert_roundtrip(full_adder_netlist())

    @pytest.mark.parametrize("num_inputs", [3, 5, 8])
    def test_popcount(self, num_inputs):
        assert_roundtrip(popcount_netlist(num_inputs))

    @pytest.mark.parametrize("width", [2, 4])
    def test_comparator(self, width):
        assert_roundtrip(comparator_netlist(width))

    @pytest.mark.parametrize("num_features", [2, 4])
    def test_clause(self, num_features):
        assert_roundtrip(clause_netlist(num_features))

    @pytest.mark.parametrize("features,clauses", [(2, 2), (3, 4)])
    def test_full_datapath(self, features, clauses):
        config = DatapathConfig(num_features=features, clauses_per_polarity=clauses)
        assert_roundtrip(DualRailDatapath(config).circuit.netlist)

    @pytest.mark.parametrize("library_factory", [umc_ll_library, full_diffusion_library],
                             ids=["umc-ll", "full-diffusion"])
    def test_mapped_datapath_on_both_libraries(self, library_factory):
        library = library_factory()
        config = DatapathConfig(num_features=2, clauses_per_polarity=4)
        netlist = DualRailDatapath(config, library=library).circuit.netlist
        assert_roundtrip(map_to_library(netlist, library))

    def test_synchronous_baseline_roundtrips_structurally(self):
        config = DatapathConfig(num_features=2, clauses_per_polarity=2)
        netlist = SingleRailDatapath(config).netlist
        report = verify_roundtrip(netlist)
        assert report.ok
        assert report.equivalence.mode == "structural"


class TestHierarchicalRoundTrip:
    def test_hierarchy_flattens_to_equivalent_netlist(self):
        config = DatapathConfig(num_features=2, clauses_per_polarity=2)
        netlist = DualRailDatapath(config).circuit.netlist
        text = emit_verilog(netlist, blocks=partition_by_attr(netlist))
        flattened = netlist_from_verilog(text)
        equivalence = check_equivalence(netlist, flattened, vectors=VECTORS)
        assert equivalence.equivalent, equivalence.mismatches
        assert flattened.count_by_type() == netlist.count_by_type()

    def test_mapped_hierarchy_keeps_block_tags(self):
        library = full_diffusion_library()
        config = DatapathConfig(num_features=2, clauses_per_polarity=2)
        netlist = DualRailDatapath(config, library=library).circuit.netlist
        mapped = map_to_library(netlist, library)
        blocks = partition_by_attr(mapped)
        # Decomposed cells inherit their source block, so the partition
        # still covers (at least) every originally tagged cell.
        assert sum(len(v) for v in blocks.values()) >= sum(
            len(v) for v in partition_by_attr(netlist).values()
        )
        flattened = netlist_from_verilog(emit_verilog(mapped, blocks=blocks))
        assert check_equivalence(mapped, flattened, vectors=64).equivalent


class TestParser:
    def test_parse_recovers_ports_and_instances(self):
        netlist = half_adder_netlist()
        modules = parse_verilog(emit_verilog(netlist))
        assert len(modules) == 1
        module = modules[0]
        assert module.inputs == netlist.primary_inputs
        assert module.outputs == netlist.primary_outputs
        assert len(module.instances) == netlist.cell_count()

    def test_instance_names_survive_the_loop(self):
        netlist = half_adder_netlist()
        parsed = netlist_from_verilog(emit_verilog(netlist))
        assert sorted(parsed.cells) == sorted(netlist.cells)

    def test_unknown_cell_type_is_actionable(self):
        source = (
            "module top(input a, output y);\n"
            "  MYSTERY u$m0 (.A(a), .Y(y));\n"
            "endmodule\n"
        )
        with pytest.raises(VerilogParseError, match="MYSTERY"):
            netlist_from_verilog(source)

    def test_wrong_pins_are_rejected(self):
        source = (
            "module top(input a, output y);\n"
            "  INV u$i0 (.Q(a), .Y(y));\n"
            "endmodule\n"
        )
        with pytest.raises(VerilogParseError, match="pins"):
            netlist_from_verilog(source)

    def test_garbage_is_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("module broken(input a; endmodule")
        with pytest.raises(VerilogParseError):
            parse_verilog("not verilog @ all")


class TestEquivalenceChecker:
    def test_detects_a_swapped_gate(self):
        reference = half_adder_netlist()
        mutated = netlist_from_verilog(emit_verilog(reference))
        victim = next(c for c in mutated.iter_cells() if c.cell_type == "AND2")
        victim.cell_type = "OR2"
        report = check_equivalence(reference, mutated, vectors=64)
        assert not report.equivalent
        assert report.mismatches

    def test_detects_missing_cells(self):
        reference = half_adder_netlist()
        smaller = netlist_from_verilog(emit_verilog(reference))
        doomed = next(iter(smaller.cells))
        del smaller.cells[doomed]
        report = check_equivalence(reference, smaller, vectors=16)
        assert not report.equivalent
