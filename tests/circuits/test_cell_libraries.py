"""Unit tests for the characterised cell libraries and the voltage model."""


import pytest

from repro.circuits import (
    CellLibrary,
    CellModel,
    VoltageModel,
    default_libraries,
    full_diffusion_library,
    umc_ll_library,
)


def test_both_libraries_available():
    libs = default_libraries()
    assert set(libs) == {"UMC LL", "FULL DIFFUSION"}


def test_library_rejects_unknown_cell_types():
    model = CellModel("BOGUS", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    with pytest.raises(KeyError):
        CellLibrary("broken", {"BOGUS": model}, VoltageModel())


def test_full_diffusion_lacks_aoi32(umc, full_diffusion):
    assert umc.has_cell("AOI32")
    assert not full_diffusion.has_cell("AOI32")


def test_full_diffusion_cells_are_larger(umc, full_diffusion):
    for cell in ("INV", "NAND2", "AND2", "C2"):
        assert full_diffusion.cell(cell).area > umc.cell(cell).area


def test_c_element_costs_more_relative_to_dff_in_full_diffusion(umc, full_diffusion):
    umc_ratio = umc.cell("C2").area / umc.cell("DFF").area
    fd_ratio = full_diffusion.cell("C2").area / full_diffusion.cell("DFF").area
    assert fd_ratio > umc_ratio


def test_cell_delay_increases_with_load(umc):
    assert umc.cell_delay("NAND2", 10.0) > umc.cell_delay("NAND2", 0.0)


def test_cell_delay_scales_with_voltage(umc):
    nominal = umc.cell_delay("NAND2", 2.0)
    low = umc.cell_delay("NAND2", 2.0, vdd=0.6)
    assert low > nominal


def test_unknown_cell_lookup_raises(umc):
    with pytest.raises(KeyError):
        umc.cell("FROBNICATOR")


def test_voltage_model_delay_factor_monotone_below_nominal():
    model = full_diffusion_library().voltage_model
    voltages = [1.2, 1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.25]
    factors = [model.delay_factor(v) for v in voltages]
    assert factors[0] == pytest.approx(1.0, rel=1e-6)
    assert all(b > a for a, b in zip(factors, factors[1:]))


def test_voltage_model_subthreshold_is_exponential():
    model = full_diffusion_library().voltage_model
    # Below threshold, a fixed voltage step should multiply the delay by a
    # roughly constant (large) factor.
    r1 = model.delay_factor(0.30) / model.delay_factor(0.35)
    r2 = model.delay_factor(0.25) / model.delay_factor(0.30)
    assert r1 > 2.0 and r2 > 2.0
    assert r2 == pytest.approx(r1, rel=0.5)


def test_energy_factor_is_quadratic(umc):
    model = umc.voltage_model
    assert model.energy_factor(0.6) == pytest.approx(0.25, rel=1e-6)


def test_functional_range_limits():
    assert not umc_ll_library().voltage_model.is_functional(0.25)
    assert full_diffusion_library().voltage_model.is_functional(0.25)


def test_delay_factor_rejects_nonpositive_voltage(umc):
    with pytest.raises(ValueError):
        umc.voltage_model.delay_factor(0.0)


def test_leakage_decreases_with_voltage(umc):
    assert umc.cell_leakage("INV", vdd=0.6) < umc.cell_leakage("INV", vdd=1.2)


def test_sequential_classification(umc):
    assert umc.is_sequential_cell("DFF")
    assert umc.is_sequential_cell("C2")
    assert not umc.is_sequential_cell("NAND2")
