"""Unit tests for the behavioural gate models (three-valued logic)."""

import itertools

import pytest

from repro.circuits import GATE_REGISTRY, evaluate_gate, gate_spec, is_inverting, is_sequential, is_unate


def eval1(cell, **inputs):
    return evaluate_gate(cell, inputs)["Y"]


def test_inverter_truth_table():
    assert eval1("INV", A=0) == 1
    assert eval1("INV", A=1) == 0
    assert eval1("INV", A=None) is None


@pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)])
def test_and2_truth_table(a, b, expected):
    assert eval1("AND2", A=a, B=b) == expected


def test_and_controlling_value_beats_unknown():
    assert eval1("AND2", A=0, B=None) == 0
    assert eval1("AND2", A=1, B=None) is None
    assert eval1("OR2", A=1, B=None) == 1
    assert eval1("OR2", A=0, B=None) is None


def test_nand_nor_are_complements_of_and_or():
    for a, b in itertools.product([0, 1], repeat=2):
        assert eval1("NAND2", A=a, B=b) == 1 - eval1("AND2", A=a, B=b)
        assert eval1("NOR2", A=a, B=b) == 1 - eval1("OR2", A=a, B=b)


def test_xor_and_xnor():
    for a, b in itertools.product([0, 1], repeat=2):
        assert eval1("XOR2", A=a, B=b) == (a ^ b)
        assert eval1("XNOR2", A=a, B=b) == 1 - (a ^ b)
    assert eval1("XOR2", A=1, B=None) is None


def test_aoi22_matches_boolean_definition():
    for a1, a2, b1, b2 in itertools.product([0, 1], repeat=4):
        expected = 1 - ((a1 & a2) | (b1 & b2))
        assert eval1("AOI22", A1=a1, A2=a2, B1=b1, B2=b2) == expected


def test_ao22_matches_boolean_definition():
    for a1, a2, b1, b2 in itertools.product([0, 1], repeat=4):
        expected = (a1 & a2) | (b1 & b2)
        assert eval1("AO22", A1=a1, A2=a2, B1=b1, B2=b2) == expected


def test_oai21_matches_boolean_definition():
    for a1, a2, b in itertools.product([0, 1], repeat=3):
        expected = 1 - ((a1 | a2) & b)
        assert eval1("OAI21", A1=a1, A2=a2, B=b) == expected


def test_maj3_matches_majority():
    for a, b, c in itertools.product([0, 1], repeat=3):
        expected = 1 if (a + b + c) >= 2 else 0
        assert eval1("MAJ3", A=a, B=b, C=c) == expected
    # Controlling values: two agreeing inputs decide regardless of the third.
    assert eval1("MAJ3", A=1, B=1, C=None) == 1
    assert eval1("MAJ3", A=0, B=0, C=None) == 0


def test_c_element_sets_resets_and_holds():
    assert evaluate_gate("C2", {"A": 1, "B": 1}, state=0)["Y"] == 1
    assert evaluate_gate("C2", {"A": 0, "B": 0}, state=1)["Y"] == 0
    assert evaluate_gate("C2", {"A": 1, "B": 0}, state=1)["Y"] == 1
    assert evaluate_gate("C2", {"A": 0, "B": 1}, state=0)["Y"] == 0


def test_c3_requires_all_inputs_to_switch():
    assert evaluate_gate("C3", {"A": 1, "B": 1, "C": 1}, state=0)["Y"] == 1
    assert evaluate_gate("C3", {"A": 1, "B": 1, "C": 0}, state=0)["Y"] == 0


def test_tie_cells_are_constant():
    assert evaluate_gate("TIE0", {}, None)["Y"] == 0
    assert evaluate_gate("TIE1", {}, None)["Y"] == 1


def test_unateness_flags():
    assert is_unate("AND2") and is_unate("NOR3") and is_unate("AOI22") and is_unate("C2")
    assert not is_unate("XOR2") and not is_unate("XNOR2")


def test_inverting_flags():
    assert is_inverting("INV") and is_inverting("NAND2") and is_inverting("AOI21")
    assert not is_inverting("AND2") and not is_inverting("AO22") and not is_inverting("BUF")


def test_sequential_flags():
    assert is_sequential("C2") and is_sequential("DFF")
    assert not is_sequential("AND2")


def test_unknown_cell_type_raises():
    with pytest.raises(KeyError):
        gate_spec("FROBNICATOR")


def test_registry_contains_expected_families():
    names = set(GATE_REGISTRY)
    for expected in ("INV", "BUF", "AND2", "OR4", "NAND3", "NOR2", "AOI22", "OAI21",
                     "AO22", "OA22", "XOR2", "C2", "C3", "DFF", "TIE0", "TIE1", "MAJ3"):
        assert expected in names
