"""Tests for the netlist levelization utility behind the batch backend."""

from __future__ import annotations

import pytest

from repro.circuits import Netlist, NetlistError, combinational_depth, levelize


def _chain_netlist() -> Netlist:
    net = Netlist("chain")
    net.add_input("a")
    net.add_input("b")
    net.add_cell("AND2", {"A": "a", "B": "b"}, {"Y": "n1"}, name="g0")
    net.add_cell("INV", {"A": "n1"}, {"Y": "n2"}, name="g1")
    net.add_cell("OR2", {"A": "n2", "B": "a"}, {"Y": "y"}, name="g2")
    net.add_output("y")
    return net


def test_levelize_orders_cells_by_dependency():
    levels = levelize(_chain_netlist())
    assert [[c.name for c in level] for level in levels] == [["g0"], ["g1"], ["g2"]]
    assert combinational_depth(_chain_netlist()) == 3


def test_levelize_groups_independent_cells_into_one_level():
    net = Netlist("wide")
    net.add_input("a")
    net.add_input("b")
    net.add_cell("INV", {"A": "a"}, {"Y": "na"}, name="inv_a")
    net.add_cell("INV", {"A": "b"}, {"Y": "nb"}, name="inv_b")
    net.add_cell("AND2", {"A": "na", "B": "nb"}, {"Y": "y"}, name="g")
    levels = levelize(net)
    assert [c.name for c in levels[0]] == ["inv_a", "inv_b"]  # sorted, same level
    assert [c.name for c in levels[1]] == ["g"]


def test_levelize_rejects_combinational_cycles():
    net = Netlist("loop")
    net.add_input("a")
    net.add_cell("OR2", {"A": "a", "B": "fb"}, {"Y": "n1"}, name="g0")
    net.add_cell("INV", {"A": "n1"}, {"Y": "fb"}, name="g1")
    with pytest.raises(NetlistError, match="cycle"):
        levelize(net)


def test_levelize_rejects_self_loops():
    net = Netlist("self")
    net.add_input("a")
    net.add_cell("C2", {"A": "a", "B": "q"}, {"Y": "q"}, name="c")
    with pytest.raises(NetlistError, match="self-loop"):
        levelize(net)


def test_levelize_accepts_c_element_latch_idiom():
    # The dual-rail input-latch idiom: both C inputs tied to the same rail.
    net = Netlist("latch")
    net.add_input("a")
    net.add_cell("C2", {"A": "a", "B": "a"}, {"Y": "q"}, name="lat")
    net.add_cell("INV", {"A": "q"}, {"Y": "y"}, name="inv")
    levels = levelize(net)
    assert [[c.name for c in level] for level in levels] == [["lat"], ["inv"]]
