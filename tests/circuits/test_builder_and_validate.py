"""Unit tests for the netlist builder DSL and the structural design-rule checks."""

import itertools

import pytest

from repro.circuits import (
    LogicBuilder,
    NetlistError,
    check_no_combinational_loops,
    check_unate_only,
    find_c_elements,
    find_flip_flops,
    validate_dual_rail_netlist,
    validate_single_rail_netlist,
)
from tests.conftest import simulate_combinational


def test_builder_and_or_not(umc):
    builder = LogicBuilder("basic")
    a, b = builder.input("a"), builder.input("b")
    builder.output("y", builder.and_(a, b))
    builder.output("z", builder.or_(builder.not_(a), b))
    for va, vb in itertools.product([0, 1], repeat=2):
        out = simulate_combinational(builder.netlist, umc, {"a": va, "b": vb}, ["y", "z"])
        assert out["y"] == (va & vb)
        assert out["z"] == ((1 - va) | vb)


def test_and_tree_matches_wide_and(umc):
    builder = LogicBuilder("tree")
    nets = builder.inputs([f"x{i}" for i in range(9)])
    builder.output("y", builder.and_tree(nets))
    all_ones = {f"x{i}": 1 for i in range(9)}
    assert simulate_combinational(builder.netlist, umc, all_ones, ["y"])["y"] == 1
    one_zero = dict(all_ones, x5=0)
    assert simulate_combinational(builder.netlist, umc, one_zero, ["y"])["y"] == 0


def test_or_tree_matches_wide_or(umc):
    builder = LogicBuilder("tree")
    nets = builder.inputs([f"x{i}" for i in range(6)])
    builder.output("y", builder.or_tree(nets))
    all_zero = {f"x{i}": 0 for i in range(6)}
    assert simulate_combinational(builder.netlist, umc, all_zero, ["y"])["y"] == 0
    assert simulate_combinational(builder.netlist, umc, dict(all_zero, x3=1), ["y"])["y"] == 1


def test_c_tree_behaves_like_completion_aggregator(umc):
    builder = LogicBuilder("ctree")
    nets = builder.inputs([f"v{i}" for i in range(4)])
    builder.output("done", builder.c_tree(nets))
    all_one = {f"v{i}": 1 for i in range(4)}
    assert simulate_combinational(builder.netlist, umc, all_one, ["done"])["done"] == 1


def test_gate_arity_checks():
    builder = LogicBuilder("arity")
    a = builder.input("a")
    with pytest.raises(NetlistError):
        builder.and_(a)
    with pytest.raises(NetlistError):
        builder.c_element(a)


def test_cell_wrong_input_count_rejected():
    builder = LogicBuilder("wrong")
    a = builder.input("a")
    with pytest.raises(NetlistError):
        builder.cell("AND2", [a])


def test_tie_cells(umc):
    builder = LogicBuilder("tie")
    builder.input("a")
    builder.output("one", builder.tie(1))
    builder.output("zero", builder.tie(0))
    out = simulate_combinational(builder.netlist, umc, {"a": 0}, ["one", "zero"])
    assert out == {"one": 1, "zero": 0}


def test_check_unate_only_flags_xor():
    builder = LogicBuilder("nonunate")
    a, b = builder.input("a"), builder.input("b")
    builder.output("y", builder.xor(a, b))
    report = check_unate_only(builder.netlist)
    assert not report.ok
    assert "non-unate" in report.errors[0]


def test_validate_single_rail_allows_xor():
    builder = LogicBuilder("baseline")
    a, b = builder.input("a"), builder.input("b")
    builder.output("y", builder.xor(a, b))
    assert validate_single_rail_netlist(builder.netlist).ok


def test_combinational_loop_detected():
    builder = LogicBuilder("loop")
    builder.input("a")
    # Create a feedback loop through two AND gates by wiring the second's
    # output back into the first.
    netlist = builder.netlist
    netlist.add_cell("AND2", {"A": "a", "B": "loop"}, {"Y": "mid"}, name="g1")
    netlist.add_cell("AND2", {"A": "mid", "B": "a"}, {"Y": "loop"}, name="g2")
    netlist.add_output("loop")
    report = check_no_combinational_loops(netlist)
    assert not report.ok


def test_c_element_feedback_is_not_a_combinational_loop():
    builder = LogicBuilder("celem")
    a = builder.input("a")
    builder.output("q", builder.c_element(a, a))
    assert check_no_combinational_loops(builder.netlist).ok


def test_find_sequential_cells():
    builder = LogicBuilder("seq")
    a = builder.input("a")
    clk = builder.input("clk")
    builder.output("q", builder.dff(a, clk))
    builder.output("c", builder.c_element(a, a))
    assert len(find_flip_flops(builder.netlist)) == 1
    assert len(find_c_elements(builder.netlist)) == 1


def test_validate_dual_rail_checks_library(full_diffusion):
    builder = LogicBuilder("needs_mapping")
    a, b = builder.input("a"), builder.input("b")
    builder.output("y", builder.cell("AOI32", [a, b, a, b, a]))
    report = validate_dual_rail_netlist(builder.netlist, full_diffusion)
    assert any("AOI32" in err for err in report.errors)
