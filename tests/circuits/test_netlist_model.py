"""Unit tests for the structural netlist data model."""

import pytest

from repro.circuits import LogicBuilder, Netlist, NetlistError, merge_netlists


def test_add_input_and_output_registers_ports():
    netlist = Netlist("demo")
    netlist.add_input("a")
    netlist.add_output("y")
    assert netlist.primary_inputs == ["a"]
    assert netlist.primary_outputs == ["y"]


def test_add_cell_creates_nets_and_connectivity():
    netlist = Netlist("demo")
    netlist.add_input("a")
    netlist.add_input("b")
    cell = netlist.add_cell("AND2", {"A": "a", "B": "b"}, {"Y": "y"})
    assert netlist.nets["y"].driver == (cell.name, "Y")
    assert ("a" in cell.input_nets()) and ("b" in cell.input_nets())
    assert netlist.nets["a"].sinks == [(cell.name, "A")]


def test_double_driver_rejected():
    netlist = Netlist("demo")
    netlist.add_input("a")
    netlist.add_cell("INV", {"A": "a"}, {"Y": "y"})
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", {"A": "a"}, {"Y": "y"})


def test_driving_primary_input_rejected():
    netlist = Netlist("demo")
    netlist.add_input("a")
    netlist.add_input("b")
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", {"A": "b"}, {"Y": "a"})


def test_duplicate_cell_name_rejected():
    netlist = Netlist("demo")
    netlist.add_input("a")
    netlist.add_cell("INV", {"A": "a"}, {"Y": "y"}, name="inv0")
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", {"A": "y"}, {"Y": "z"}, name="inv0")


def test_topological_order_respects_dependencies():
    builder = LogicBuilder("topo")
    a, b = builder.input("a"), builder.input("b")
    ab = builder.and_(a, b)
    y = builder.not_(ab)
    builder.output("y", y)
    order = [cell.name for cell in builder.netlist.topological_order()]
    and_cell = builder.netlist.cell_of_driver(ab).name
    inv_cell = builder.netlist.cell_of_driver(y).name
    assert order.index(and_cell) < order.index(inv_cell)


def test_topological_order_handles_every_cell_despite_feedback():
    netlist = Netlist("loop")
    netlist.add_input("a")
    netlist.add_cell("C2", {"A": "a", "B": "q"}, {"Y": "q"}, name="celem")
    order = netlist.topological_order()
    assert [c.name for c in order] == ["celem"]


def test_check_structure_reports_floating_inputs():
    netlist = Netlist("floating")
    netlist.add_cell("AND2", {"A": "a", "B": "b"}, {"Y": "y"})
    netlist.add_output("y")
    problems = netlist.check_structure()
    assert len(problems) == 2
    assert any("floating" in p for p in problems)


def test_check_structure_reports_undriven_output():
    netlist = Netlist("undriven")
    netlist.add_output("y")
    assert any("undriven" in p for p in netlist.check_structure())


def test_count_by_type_histogram():
    builder = LogicBuilder("hist")
    a, b = builder.input("a"), builder.input("b")
    builder.output("y", builder.and_(a, b))
    builder.output("z", builder.or_(a, b))
    counts = builder.netlist.count_by_type()
    assert counts["AND2"] == 1
    assert counts["OR2"] == 1
    assert counts["BUF"] == 2  # output aliases


def test_internal_nets_excludes_ports():
    builder = LogicBuilder("internal")
    a, b = builder.input("a"), builder.input("b")
    mid = builder.and_(a, b)
    builder.output("y", builder.not_(mid))
    internal = builder.netlist.internal_nets()
    assert mid in internal
    assert "a" not in internal and "y" not in internal


def test_merge_netlists_shares_nets_and_interfaces():
    first = LogicBuilder("first")
    a, b = first.input("a"), first.input("b")
    first.output("mid", first.and_(a, b))

    second = LogicBuilder("second")
    second.input("mid")
    second.input("c")
    second.output("y", second.or_("mid", "c"))

    merged = merge_netlists("merged", [first.netlist, second.netlist])
    assert "a" in merged.primary_inputs and "c" in merged.primary_inputs
    # "mid" is driven by the first part and consumed by the second, so it is
    # no longer an interface output.
    assert "mid" not in merged.primary_inputs
    assert "y" in merged.primary_outputs


def test_unique_name_never_collides():
    netlist = Netlist("names")
    names = {netlist.unique_name("x") for _ in range(100)}
    assert len(names) == 100
