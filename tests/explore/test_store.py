"""Result store: key invalidation, round trips, corrupt-entry recovery."""

from __future__ import annotations

import dataclasses
import json

from repro.circuits.library import CellLibrary, CellModel, VoltageModel, umc_ll_library
from repro.explore import (
    DesignPoint,
    DesignPointSpec,
    EvaluationSettings,
    ResultStore,
    library_fingerprint,
    point_key,
)

SPEC = DesignPointSpec(
    dataset="noisy-xor",
    clauses_per_polarity=2,
    booleanizer_levels=1,
    library="UMC LL",
    style="dual-rail-reduced",
)
SETTINGS = EvaluationSettings()


def make_point(spec=SPEC) -> DesignPoint:
    return DesignPoint(
        spec=spec,
        backend="batch",
        vdd=1.2,
        num_features=3,
        accuracy=0.9,
        hardware_correctness=1.0,
        mean_latency_ps=500.0,
        p95_latency_ps=510.0,
        max_latency_ps=512.0,
        energy_per_inference_fj=200.0,
        area_um2=505.1,
        sequential_area_um2=226.8,
        leakage_nw=8.2,
        cell_count=185,
        throughput_mops=1100.0,
        timed_operands=6,
    )


def perturbed_library() -> CellLibrary:
    """UMC LL with one cell's intrinsic delay nudged — a library change."""
    base = umc_ll_library()
    cells = dict(base.cells)
    model = cells["INV"]
    cells["INV"] = CellModel(
        name=model.name,
        area=model.area,
        input_cap=model.input_cap,
        intrinsic_delay=model.intrinsic_delay + 0.1,
        load_delay=model.load_delay,
        switching_energy=model.switching_energy,
        leakage=model.leakage,
    )
    return CellLibrary(base.name, cells, base.voltage_model, base.description)


# ------------------------------------------------------------------ hashing


def test_key_is_stable_for_identical_inputs():
    lib = umc_ll_library()
    assert point_key(SPEC, SETTINGS, lib, "batch") == point_key(
        SPEC, SETTINGS, lib, "batch"
    )


def test_key_invalidates_on_spec_change():
    lib = umc_ll_library()
    base = point_key(SPEC, SETTINGS, lib, "batch")
    for change in (
        {"clauses_per_polarity": 4},
        {"style": "dual-rail-full"},
        {"vdd": 0.8},
        {"dataset": "sensor-blobs"},
    ):
        other = dataclasses.replace(SPEC, **change)
        assert point_key(other, SETTINGS, lib, "batch") != base


def test_key_invalidates_on_settings_backend_and_version_change():
    lib = umc_ll_library()
    base = point_key(SPEC, SETTINGS, lib, "batch")
    assert point_key(SPEC, dataclasses.replace(SETTINGS, operands=64),
                     lib, "batch") != base
    assert point_key(SPEC, SETTINGS, lib, "event") != base
    # Netlist-generation / measurement code changes are keyed through the
    # evaluator version.
    assert point_key(SPEC, SETTINGS, lib, "batch", evaluator_version=2) != base


def test_key_invalidates_on_library_characterisation_change():
    base_lib = umc_ll_library()
    assert library_fingerprint(base_lib) == library_fingerprint(umc_ll_library())
    changed = perturbed_library()
    assert library_fingerprint(changed) != library_fingerprint(base_lib)
    assert point_key(SPEC, SETTINGS, changed, "batch") != point_key(
        SPEC, SETTINGS, base_lib, "batch"
    )


def test_key_invalidates_on_voltage_model_change():
    base_lib = umc_ll_library()
    changed = CellLibrary(
        base_lib.name,
        base_lib.cells,
        VoltageModel(min_functional_vdd=0.45),
        base_lib.description,
    )
    assert point_key(SPEC, SETTINGS, changed, "batch") != point_key(
        SPEC, SETTINGS, base_lib, "batch"
    )


# ------------------------------------------------------------------- storage


def test_round_trip(tmp_path):
    store = ResultStore(tmp_path / "store")
    key = point_key(SPEC, SETTINGS, umc_ll_library(), "batch")
    point = make_point()
    assert store.get(key) is None  # cold miss
    store.put(key, point)
    loaded = store.get(key)
    assert loaded is not None
    assert loaded.to_dict() == point.to_dict()
    assert store.stats() == {"hits": 1, "misses": 1, "corrupt": 0, "entries": 1}


def test_corrupt_json_is_a_self_healing_miss(tmp_path):
    store = ResultStore(tmp_path)
    key = point_key(SPEC, SETTINGS, umc_ll_library(), "batch")
    store.put(key, make_point())
    path = store._path(key)
    path.write_text("{ not json at all")
    assert store.get(key) is None
    assert not path.exists()  # the bad entry was deleted
    assert store.corrupt == 1
    # The store recovers: a fresh put/get works again.
    store.put(key, make_point())
    assert store.get(key) is not None


def test_schema_mismatch_and_key_mismatch_are_misses(tmp_path):
    store = ResultStore(tmp_path)
    key = point_key(SPEC, SETTINGS, umc_ll_library(), "batch")
    # Valid JSON, wrong schema.
    store._path(key).parent.mkdir(parents=True, exist_ok=True)
    store._path(key).write_text(json.dumps({"unexpected": True}))
    assert store.get(key) is None
    # A record copied under the wrong filename must not be served.
    record = {"key": "someone-else", "point": make_point().to_dict()}
    store._path(key).write_text(json.dumps(record))
    assert store.get(key) is None
    assert store.corrupt == 2


def test_non_object_json_entries_are_self_healing_misses(tmp_path):
    store = ResultStore(tmp_path)
    key = point_key(SPEC, SETTINGS, umc_ll_library(), "batch")
    store.directory.mkdir(parents=True, exist_ok=True)
    for payload in ("[1, 2, 3]", '"just a string"', "42"):
        store._path(key).write_text(payload)
        assert store.get(key) is None
        assert not store._path(key).exists()


def test_missing_point_fields_are_misses(tmp_path):
    store = ResultStore(tmp_path)
    key = point_key(SPEC, SETTINGS, umc_ll_library(), "batch")
    truncated = make_point().to_dict()
    del truncated["accuracy"]
    store.directory.mkdir(parents=True, exist_ok=True)
    store._path(key).write_text(json.dumps({"key": key, "point": truncated}))
    assert store.get(key) is None


def test_len_counts_entries_without_a_directory(tmp_path):
    store = ResultStore(tmp_path / "never-created")
    assert len(store) == 0


def test_corrupt_heal_is_not_silent(tmp_path):
    """Every heal increments ``dse_store_corrupt_total`` — pinned here."""
    from repro.obs import metrics as _metrics

    store = ResultStore(tmp_path)
    key = point_key(SPEC, SETTINGS, umc_ll_library(), "batch")
    counter = _metrics.default_registry().counter(
        "dse_store_corrupt_total",
        "ResultStore entries that failed validation and were healed.",
    )
    before = counter.value()
    store.put(key, make_point())
    store._path(key).write_text("{ not json at all")
    assert store.get(key) is None
    assert counter.value() == before + 1
    # A healthy get does not touch the counter.
    store.put(key, make_point())
    assert store.get(key) is not None
    assert counter.value() == before + 1
    # And the heal is visible in tracing: a store.corrupt warning span.
    from repro.obs import trace as _trace

    with _trace.capture() as captured:
        store._path(key).write_text("[1, 2]")
        assert store.get(key) is None
    corrupt_spans = [r for r in captured.records if r.name == "store.corrupt"]
    assert len(corrupt_spans) == 1
    assert corrupt_spans[0].attrs["severity"] == "warning"
    assert counter.value() == before + 2


def test_entry_digests_fingerprint_the_bytes(tmp_path):
    store = ResultStore(tmp_path)
    assert store.entry_digests() == {}
    key = point_key(SPEC, SETTINGS, umc_ll_library(), "batch")
    store.put(key, make_point())
    digests = store.entry_digests()
    assert set(digests) == {key}
    # Same content, same digest; different content, different digest.
    store.put(key, make_point())
    assert store.entry_digests() == digests
    other = dataclasses.replace(SPEC, clauses_per_polarity=4)
    key2 = point_key(other, SETTINGS, umc_ll_library(), "batch")
    store.put(key2, make_point(other))
    updated = store.entry_digests()
    assert updated[key] == digests[key] and updated[key2] != digests[key]
