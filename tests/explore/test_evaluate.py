"""End-to-end evaluation: record sanity, determinism, store integration."""

from __future__ import annotations

import dataclasses

import pytest

from repro.explore import (
    DesignPoint,
    DesignPointSpec,
    EvaluationSettings,
    ParameterGrid,
    ResultStore,
    evaluate_point,
    run_sweep,
)

#: Deliberately tiny: 2 features, 2 clauses/polarity, short streams.
TINY = EvaluationSettings(
    num_features=2, train_samples=60, epochs=3, operands=6, timing_operands=3
)

TINY_GRID = ParameterGrid(
    name="tiny",
    datasets=("noisy-xor",),
    clauses_per_polarity=(2,),
    booleanizer_levels=(1,),
    libraries=("UMC LL",),
    styles=("dual-rail-reduced", "dual-rail-full", "sync"),
    vdds=(None,),
)


def spec_for(style: str, **overrides) -> DesignPointSpec:
    values = dict(
        dataset="noisy-xor",
        clauses_per_polarity=2,
        booleanizer_levels=1,
        library="UMC LL",
        style=style,
        vdd=None,
    )
    values.update(overrides)
    return DesignPointSpec(**values)


@pytest.fixture(scope="module")
def tiny_points():
    return {
        style: evaluate_point(spec_for(style), TINY)
        for style in ("dual-rail-reduced", "dual-rail-full", "sync")
    }


def test_points_carry_every_tradeoff_axis(tiny_points):
    for style, point in tiny_points.items():
        assert 0.0 <= point.accuracy <= 1.0
        assert point.hardware_correctness == 1.0, style
        assert point.mean_latency_ps > 0
        assert point.p95_latency_ps <= point.max_latency_ps or style == "sync"
        assert point.energy_per_inference_fj > 0
        assert point.area_um2 > point.sequential_area_um2 > 0
        assert point.cell_count > 0
        assert point.vdd == pytest.approx(1.2)


def test_styles_change_the_circuit_not_the_model(tiny_points):
    reduced = tiny_points["dual-rail-reduced"]
    full = tiny_points["dual-rail-full"]
    sync = tiny_points["sync"]
    # Same trained model everywhere...
    assert reduced.accuracy == full.accuracy == sync.accuracy
    # ...different hardware: full CD pays more completion-detection cells,
    # the clocked baseline's latency is its clock period.
    assert full.cell_count > reduced.cell_count
    assert full.area_um2 > reduced.area_um2
    assert sync.mean_latency_ps == sync.max_latency_ps


def test_vdd_scales_latency():
    nominal = evaluate_point(spec_for("dual-rail-reduced"), TINY)
    scaled = evaluate_point(spec_for("dual-rail-reduced", vdd=0.8), TINY)
    assert scaled.vdd == pytest.approx(0.8)
    assert scaled.mean_latency_ps > nominal.mean_latency_ps


def test_event_and_batch_backends_agree_functionally():
    batch = evaluate_point(spec_for("dual-rail-reduced"), TINY, backend="batch")
    event = evaluate_point(spec_for("dual-rail-reduced"), TINY, backend="event")
    assert batch.hardware_correctness == event.hardware_correctness
    assert batch.accuracy == event.accuracy
    assert batch.area_um2 == event.area_um2
    # The event backend times the full stream; batch times the prefix.
    assert event.timed_operands == TINY.operands
    assert batch.timed_operands == TINY.timing_operands


def test_bitpack_point_is_identical_to_batch_point():
    """The bitpack sweep backend yields the batch backend's record, field for field."""
    batch = evaluate_point(spec_for("dual-rail-reduced"), TINY, backend="batch")
    bitpack = evaluate_point(spec_for("dual-rail-reduced"), TINY, backend="bitpack")
    assert bitpack.backend == "bitpack"
    assert dataclasses.replace(bitpack, backend="batch") == batch


def test_infeasible_point_is_rejected():
    with pytest.raises(ValueError, match="infeasible"):
        evaluate_point(spec_for("sync", vdd=0.3), TINY)
    with pytest.raises(ValueError, match="backend"):
        evaluate_point(spec_for("sync"), TINY, backend="spice")


def test_point_serialization_round_trip(tiny_points):
    for point in tiny_points.values():
        assert DesignPoint.from_dict(point.to_dict()).to_dict() == point.to_dict()


def test_sweep_jobs_invariance_and_order():
    serial = run_sweep(TINY_GRID, TINY, jobs=1)
    parallel = run_sweep(TINY_GRID, TINY, jobs=3)
    assert [p.to_dict() for p in serial.points] == [p.to_dict() for p in parallel.points]
    assert [p.spec for p in serial.points] == list(TINY_GRID.expand().points)


def test_sweep_store_integration(tmp_path):
    store = ResultStore(tmp_path)
    first = run_sweep(TINY_GRID, TINY, jobs=1, store=store)
    assert (first.evaluated, first.cached) == (3, 0)
    second = run_sweep(TINY_GRID, TINY, jobs=2, store=store)
    assert (second.evaluated, second.cached) == (0, 3)
    assert second.cache_hit_rate == 1.0
    assert [p.to_dict() for p in second.points] == [p.to_dict() for p in first.points]
    # Changing the settings invalidates every point.
    changed = dataclasses.replace(TINY, operands=7)
    third = run_sweep(TINY_GRID, changed, jobs=1, store=store)
    assert (third.evaluated, third.cached) == (3, 0)
