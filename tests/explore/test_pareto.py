"""Pareto-front extraction and ranking over synthetic design points."""

from __future__ import annotations

import pytest

from repro.explore import (
    DesignPoint,
    DesignPointSpec,
    Metric,
    dominates,
    front_csv,
    pareto_front,
    pareto_ranks,
    parse_metric,
    parse_metric_pair,
)


def make_point(tag: int, accuracy: float, energy: float, latency: float = 100.0,
               vdd=None):
    """A synthetic DesignPoint; *tag* keeps specs distinct for tie-breaks."""
    spec = DesignPointSpec(
        dataset="noisy-xor",
        clauses_per_polarity=tag,
        booleanizer_levels=1,
        library="UMC LL",
        style="sync",
        vdd=vdd,
    )
    return DesignPoint(
        spec=spec,
        backend="batch",
        vdd=1.2,
        num_features=3,
        accuracy=accuracy,
        hardware_correctness=1.0,
        mean_latency_ps=latency,
        p95_latency_ps=latency,
        max_latency_ps=latency,
        energy_per_inference_fj=energy,
        area_um2=100.0 + tag,
        sequential_area_um2=10.0,
        leakage_nw=1.0,
        cell_count=50,
        throughput_mops=1.0,
        timed_operands=4,
    )


ACC = Metric("accuracy", "max")
ENERGY = Metric("energy_per_inference_fj", "min")


def test_dominates_requires_strictly_better_somewhere():
    a = make_point(1, accuracy=0.9, energy=10.0)
    b = make_point(2, accuracy=0.8, energy=20.0)
    twin = make_point(3, accuracy=0.9, energy=10.0)
    assert dominates(a, b, (ACC, ENERGY))
    assert not dominates(b, a, (ACC, ENERGY))
    assert not dominates(a, twin, (ACC, ENERGY))


def test_front_extraction_and_order():
    points = [
        make_point(1, accuracy=0.9, energy=30.0),
        make_point(2, accuracy=0.8, energy=10.0),   # on the front
        make_point(3, accuracy=0.7, energy=20.0),   # dominated by 2
        make_point(4, accuracy=0.95, energy=40.0),  # on the front
    ]
    front = pareto_front(points, (ACC, ENERGY))
    assert [p.spec.clauses_per_polarity for p in front] == [4, 1, 2]


def test_equally_good_points_all_survive():
    points = [make_point(1, 0.9, 10.0), make_point(2, 0.9, 10.0)]
    assert len(pareto_front(points, (ACC, ENERGY))) == 2


def test_metric_ties_across_nominal_and_explicit_vdd():
    """Tie-breaking must not compare specs directly: vdd mixes None/float."""
    points = [
        make_point(1, 0.9, 10.0, vdd=None),
        make_point(1, 0.9, 10.0, vdd=0.8),
    ]
    front = pareto_front(points, (ACC, ENERGY))
    assert len(front) == 2
    assert front_csv(points, (ACC, ENERGY)) == front_csv(
        list(reversed(points)), (ACC, ENERGY)
    )


def test_ranks_layer_the_whole_population():
    points = [
        make_point(1, accuracy=0.9, energy=10.0),  # rank 0
        make_point(2, accuracy=0.8, energy=20.0),  # rank 1
        make_point(3, accuracy=0.7, energy=30.0),  # rank 2
    ]
    assert pareto_ranks(points, (ACC, ENERGY)) == [0, 1, 2]


def test_single_metric_front_is_the_optimum():
    points = [make_point(i, 0.5 + 0.1 * i, 10.0 * i) for i in range(1, 4)]
    front = pareto_front(points, (ACC,))
    assert len(front) == 1
    assert front[0].accuracy == pytest.approx(0.8)


def test_parse_metric_aliases_and_explicit_forms():
    assert parse_metric("energy") == ENERGY
    assert parse_metric("accuracy") == ACC
    assert parse_metric("area_um2:min") == Metric("area_um2", "min")
    with pytest.raises(KeyError):
        parse_metric("wattage")
    with pytest.raises(ValueError):
        parse_metric("area_um2:sideways")
    a, b = parse_metric_pair("accuracy, energy")
    assert (a, b) == (ACC, ENERGY)
    with pytest.raises(ValueError):
        parse_metric_pair("accuracy")


def test_front_csv_is_deterministic_and_well_formed():
    points = [make_point(1, 0.9, 30.0), make_point(2, 0.8, 10.0)]
    text = front_csv(points, (ACC, ENERGY))
    assert text == front_csv(list(reversed(points)), (ACC, ENERGY))
    header, *rows = text.strip().split("\n")
    assert header.startswith("dataset,clauses_per_polarity,")
    assert header.endswith("accuracy,energy_per_inference_fj")
    assert len(rows) == 2


def test_metric_accessor_rejects_non_numeric_attributes():
    point = make_point(1, 0.9, 10.0)
    with pytest.raises(KeyError):
        point.metric("spec")
    with pytest.raises(KeyError):
        point.metric("no_such_metric")
