"""Work queue: sharding determinism, claim races, manifest and shard plumbing.

The fault-injection suite (``test_fault_injection.py``) covers crashes and
corruption; this file pins the sunny-day contracts: any worker count, shard
layout or claim order produces a byte-identical store and Pareto CSV, and
racing processes never evaluate a point twice.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.explore import (
    EvaluationSettings,
    ResultStore,
    front_csv,
    journal_events,
    journal_stats,
    named_grid,
    pareto_front,
    parse_metric,
    parse_shard,
    run_sweep,
    write_manifest,
)
from repro.explore.queue import (
    DseWorker,
    WorkQueue,
    resolve_evaluator,
    run_queue_sweep,
)

from queue_helpers import (
    FAST_SETTINGS,
    fake_evaluate,
    race_loader,
    smoke_specs,
)

#: Fork inherits the parent's memory, so worker processes can run test-local
#: evaluators without pickling; every multi-process test in this suite needs it.
fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


# ------------------------------------------------------------------ plumbing


def test_parse_shard_accepts_valid_selectors():
    assert parse_shard("0/1") == (0, 1)
    assert parse_shard("2/3") == (2, 3)


@pytest.mark.parametrize("text", ["3/3", "-1/2", "1", "a/b", "1/0", "2/1"])
def test_parse_shard_rejects_invalid_selectors(text):
    with pytest.raises(ValueError):
        parse_shard(text)


def test_resolve_evaluator_round_trips_and_validates():
    fn = resolve_evaluator("repro.explore.evaluate:evaluate_point")
    from repro.explore.evaluate import evaluate_point

    assert fn is evaluate_point
    with pytest.raises(ValueError):
        resolve_evaluator("no-colon-here")


def test_manifest_is_byte_stable_and_reports_resume(tmp_path):
    specs = smoke_specs(4)
    path, resumed = write_manifest(tmp_path, specs, settings=FAST_SETTINGS)
    assert not resumed
    first = path.read_bytes()
    path2, resumed2 = write_manifest(tmp_path, specs, settings=FAST_SETTINGS)
    assert resumed2 and path2 == path
    assert path.read_bytes() == first
    payload = json.loads(first)
    assert len(payload["tasks"]) == 4
    # Keys in the manifest match what the evaluator would store under.
    assert all(len(task["key"]) == 64 for task in payload["tasks"])


def test_manifest_rewrite_on_changed_grid(tmp_path):
    write_manifest(tmp_path, smoke_specs(4), settings=FAST_SETTINGS)
    _, resumed = write_manifest(tmp_path, smoke_specs(6), settings=FAST_SETTINGS)
    assert not resumed


def test_queue_validates_parameters(tmp_path):
    with pytest.raises(ValueError):
        WorkQueue(tmp_path, lease_ttl=0.0)
    with pytest.raises(ValueError):
        WorkQueue(tmp_path, max_attempts=0)


def test_claim_is_exclusive_and_released_cleanly(tmp_path):
    write_manifest(tmp_path, smoke_specs(2), settings=FAST_SETTINGS)
    a = WorkQueue(tmp_path, owner="a", lease_ttl=60.0)
    b = WorkQueue(tmp_path, owner="b", lease_ttl=60.0)
    task = a.tasks()[0]
    lease = a.try_claim(task)
    assert lease is not None and lease.owner == "a"
    assert b.try_claim(task) is None  # live lease is honoured
    a.release(lease)
    assert b.try_claim(task) is not None  # free again after clean release


def test_failed_release_counts_attempts_across_owners(tmp_path):
    write_manifest(tmp_path, smoke_specs(1), settings=FAST_SETTINGS)
    a = WorkQueue(tmp_path, owner="a", max_attempts=2)
    b = WorkQueue(tmp_path, owner="b", max_attempts=2)
    task = a.tasks()[0]
    lease = a.try_claim(task)
    a.release(lease, failed=True, error="boom")
    # The failed lease is expired on disk: the next claim reclaims attempt 2.
    lease2 = b.try_claim(task)
    assert lease2 is not None and lease2.attempt == 2
    b.release(lease2, failed=True, error="boom again")
    # Attempt 3 exceeds max_attempts=2: quarantined, never re-issued.
    assert a.try_claim(task) is None
    assert a.is_quarantined(task.key)
    records = a.quarantined()
    assert len(records) == 1 and records[0]["attempts"] == 3


# ------------------------------------------------- sharding determinism


def _run_workers(store_dir, shards, reverse=False):
    """Drain a manifest with in-process workers over the given shards."""
    for shard in shards:
        DseWorker(
            store_dir=store_dir, shard=shard, reverse=reverse,
            evaluator=fake_evaluate, lease_ttl=30.0,
        ).run()


@pytest.mark.parametrize(
    "shards,reverse",
    [
        ([None], False),
        ([(0, 2), (1, 2)], False),
        ([(1, 2), (0, 2)], True),
        ([(0, 3), (1, 3), (2, 3)], False),
        ([(2, 3), (0, 3), (1, 3)], True),
    ],
)
def test_any_sharding_yields_byte_identical_stores(tmp_path, shards, reverse):
    specs = smoke_specs(6)
    reference = ResultStore(tmp_path / "ref")
    write_manifest(reference.directory, specs, settings=FAST_SETTINGS)
    _run_workers(reference.directory, [None])

    store = ResultStore(tmp_path / "sharded")
    write_manifest(store.directory, specs, settings=FAST_SETTINGS)
    _run_workers(store.directory, shards, reverse=reverse)

    assert store.entry_digests() == reference.entry_digests()
    metrics = [parse_metric("accuracy"), parse_metric("energy")]
    tasks = WorkQueue(store.directory).tasks()
    points = [store.get(t.key) for t in tasks]
    ref_points = [reference.get(t.key) for t in tasks]
    assert front_csv(pareto_front(points, metrics), metrics) == front_csv(
        pareto_front(ref_points, metrics), metrics
    )
    stats = journal_stats(journal_events(store.directory))
    assert stats["duplicate_completes"] == 0
    assert stats["completes"] == len(specs)


@fork
def test_queue_sweep_matches_plain_run_sweep(tmp_path):
    """Real evaluator: ``workers=2`` ≡ ``jobs=1``, byte for byte."""
    specs = smoke_specs(4)
    plain = ResultStore(tmp_path / "plain")
    ref = run_sweep(specs, settings=FAST_SETTINGS, jobs=1, store=plain)
    queued = ResultStore(tmp_path / "queued")
    res = run_queue_sweep(
        specs, settings=FAST_SETTINGS, workers=2, store=queued, lease_ttl=20.0
    )
    assert res.complete and not res.quarantined
    assert res.duplicate_completes == 0
    assert queued.entry_digests() == plain.entry_digests()
    assert [p.to_dict() for p in res.points] == [p.to_dict() for p in ref.points]
    # A second sweep over the same store is fully cache-warm.
    res2 = run_queue_sweep(
        specs, settings=FAST_SETTINGS, workers=2, store=queued, lease_ttl=20.0
    )
    assert res2.evaluated == 0 and res2.cached == len(specs)
    assert res2.resume_overhead_pct == 0.0


# ------------------------------------------------------- concurrency stress


@fork
def test_racing_load_or_compute_never_double_evaluates(tmp_path):
    """Two processes race the same key: one computes, both return, quickly."""
    specs = smoke_specs(1)
    write_manifest(tmp_path, specs, settings=FAST_SETTINGS)
    ctx = multiprocessing.get_context("fork")
    done = ctx.Queue()
    start = time.monotonic()
    procs = [
        ctx.Process(target=race_loader, args=(str(tmp_path), name, done))
        for name in ("racer-a", "racer-b")
    ]
    for proc in procs:
        proc.start()
    outcomes = [done.get(timeout=60) for _ in procs]
    for proc in procs:
        proc.join(timeout=60)
    elapsed = time.monotonic() - start
    assert elapsed < 60, "load_or_compute deadlocked"
    assert sorted(o["ok"] for o in outcomes) == [True, True]
    # Exactly one claim, one completion; the loser polled the store.
    stats = journal_stats(journal_events(tmp_path))
    assert stats["claims"] == 1
    assert stats["completes"] == 1
    assert stats["duplicate_completes"] == 0
    # Both processes returned the same bytes.
    assert outcomes[0]["digest"] == outcomes[1]["digest"]
    assert sum(o["computed"] for o in outcomes) == 1
