"""Grid expansion: determinism, normalisation, feasibility filtering."""

from __future__ import annotations

import pytest

from repro.explore import (
    DesignPointSpec,
    ParameterGrid,
    grid_names,
    named_grid,
)


def test_smoke_grid_meets_ci_floor():
    """The CI sweep contract: >= 48 feasible points, nothing silent."""
    expansion = named_grid("smoke").expand()
    assert len(expansion) >= 48
    # Boolean-dataset booleanizer duplicates are counted, not evaluated twice.
    assert expansion.dropped_duplicates > 0
    assert len(set(expansion.points)) == len(expansion.points)


def test_expansion_is_deterministic():
    grid = named_grid("smoke")
    assert grid.expand().points == grid.expand().points


def test_boolean_datasets_collapse_booleanizer_axis():
    grid = ParameterGrid(
        datasets=("noisy-xor",),
        booleanizer_levels=(1, 2, 4),
        libraries=("UMC LL",),
        styles=("sync",),
    )
    expansion = grid.expand()
    assert len(expansion) == 1
    assert expansion.points[0].booleanizer_levels == 1
    assert expansion.dropped_duplicates == 2


def test_continuous_datasets_keep_booleanizer_axis():
    grid = ParameterGrid(
        datasets=("sensor-blobs",),
        booleanizer_levels=(1, 2, 4),
        libraries=("UMC LL",),
        styles=("sync",),
    )
    expansion = grid.expand()
    assert [p.booleanizer_levels for p in expansion.points] == [1, 2, 4]


def test_infeasible_supplies_are_filtered_per_library():
    # 0.4 V is below UMC LL's 0.5 V functional floor but fine for the
    # subthreshold FULL DIFFUSION library (floor 0.25 V).
    grid = ParameterGrid(
        datasets=("noisy-xor",),
        libraries=("UMC LL", "FULL DIFFUSION"),
        styles=("dual-rail-reduced",),
        vdds=(0.4,),
    )
    expansion = grid.expand()
    assert [p.library for p in expansion.points] == ["FULL DIFFUSION"]
    assert expansion.dropped_infeasible == 1


def test_spec_validation_rejects_unknown_axes():
    with pytest.raises(KeyError):
        DesignPointSpec("no-such-dataset", 2, 1, "UMC LL", "sync").validate()
    with pytest.raises(KeyError):
        DesignPointSpec("noisy-xor", 2, 1, "NO LIB", "sync").validate()
    with pytest.raises(ValueError):
        DesignPointSpec("noisy-xor", 2, 1, "UMC LL", "tri-rail").validate()
    with pytest.raises(ValueError):
        DesignPointSpec("noisy-xor", 0, 1, "UMC LL", "sync").validate()
    with pytest.raises(ValueError):
        DesignPointSpec("noisy-xor", 2, 1, "UMC LL", "sync", vdd=-1.0).validate()


def test_labels_are_unique_across_the_smoke_grid():
    points = named_grid("smoke").expand().points
    labels = [p.label() for p in points]
    assert len(set(labels)) == len(labels)


def test_named_grid_lookup():
    assert set(grid_names()) == {"smoke", "nominal", "full"}
    with pytest.raises(KeyError):
        named_grid("weekend")
