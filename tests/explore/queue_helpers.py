"""Shared fixtures for the work-queue and fault-injection suites.

Lives in its own module (not conftest) because forked worker processes
import these callables by reference: under the ``fork`` start method a
``multiprocessing.Process`` target needs no pickling, so tests can hand
workers in-process fakes — but keeping them here, at module level, also
works under ``spawn`` for the helpers that go through ``worker_main``.

``fake_evaluate`` is a *deterministic* stand-in for the real evaluator: a
pure function of the spec, so byte-identity assertions (same store
entries, same fronts) hold across any worker count, shard layout, claim
order, crash or resume — exactly the property the real evaluator has,
minus the training time.
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.explore import DesignPoint, EvaluationSettings, ResultStore, named_grid
from repro.explore.queue import WorkQueue

#: Smallest settings the real evaluator accepts — keeps the handful of
#: real-evaluator tests around ~30 ms per design point.
FAST_SETTINGS = EvaluationSettings(
    num_features=2, train_samples=12, epochs=1, operands=4,
    timing_operands=2, seed=7,
)


def smoke_specs(count):
    """The first *count* points of the smoke grid, in expansion order."""
    return list(named_grid("smoke").expand().points[:count])


def _spec_scalar(spec, salt):
    """A deterministic float in (0, 1) derived from the spec label."""
    digest = hashlib.sha256(f"{salt}:{spec.label()}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


def fake_evaluate(spec, settings, backend, timing_backend, program_cache=None,
                  delay=0.0):
    """Deterministic evaluator stand-in: pure function of the spec.

    *delay* (seconds) widens the in-flight window for kill and race tests.
    """
    if delay:
        time.sleep(delay)
    return DesignPoint(
        spec=spec,
        backend=backend,
        vdd=spec.vdd if spec.vdd is not None else 1.2,
        num_features=settings.num_features,
        accuracy=round(0.5 + 0.5 * _spec_scalar(spec, "acc"), 6),
        hardware_correctness=1.0,
        mean_latency_ps=round(400 + 400 * _spec_scalar(spec, "lat"), 3),
        p95_latency_ps=round(500 + 400 * _spec_scalar(spec, "p95"), 3),
        max_latency_ps=round(600 + 400 * _spec_scalar(spec, "max"), 3),
        energy_per_inference_fj=round(100 + 300 * _spec_scalar(spec, "en"), 3),
        area_um2=round(300 + 500 * _spec_scalar(spec, "area"), 3),
        sequential_area_um2=128.0,
        leakage_nw=8.2,
        cell_count=int(100 + 100 * _spec_scalar(spec, "cells")),
        throughput_mops=round(900 + 300 * _spec_scalar(spec, "thr"), 3),
        timed_operands=settings.timing_operands,
    )


def slow_fake_evaluate(spec, settings, backend, timing_backend,
                       program_cache=None):
    """``fake_evaluate`` with a wide in-flight window for SIGKILL tests."""
    return fake_evaluate(spec, settings, backend, timing_backend,
                         program_cache=program_cache, delay=0.2)


def race_loader(store_dir, owner, done_queue):
    """Process target: resolve task 0 via ``load_or_compute``, report back.

    Used by the concurrency-stress test — two of these race the same key;
    the lease must serialize them into one computation.
    """
    queue = WorkQueue(store_dir, owner=owner, lease_ttl=30.0)
    store = ResultStore(store_dir)
    task = queue.tasks()[0]
    manifest = queue.manifest()
    settings = EvaluationSettings(**manifest["settings"])

    def compute(spec):
        return fake_evaluate(
            spec, settings, manifest["backend"], manifest["timing_backend"],
            delay=0.25,
        )

    try:
        point, computed = queue.load_or_compute(
            task, compute, store, timeout=30.0
        )
        payload = json.dumps(point.to_dict(), sort_keys=True)
        done_queue.put({
            "ok": True,
            "owner": owner,
            "computed": computed,
            "digest": hashlib.sha256(payload.encode()).hexdigest(),
        })
    except Exception as err:  # pragma: no cover - surfaced as a test failure
        done_queue.put({"ok": False, "owner": owner, "error": repr(err)})


def worker_process(store_dir, owner, lease_ttl=1.0, shard=None,
                   heartbeat_interval=None, done_queue=None):
    """Process target: one ``DseWorker`` over the slow fake evaluator.

    The kill tests SIGKILL one of these mid-evaluation; survivors reclaim
    its lease after *lease_ttl* and finish the grid.
    """
    from repro.explore.queue import DseWorker

    report = DseWorker(
        store_dir=store_dir, owner=owner, lease_ttl=lease_ttl, shard=shard,
        heartbeat_interval=heartbeat_interval, evaluator=slow_fake_evaluate,
        poll_interval=0.02,
    ).run()
    if done_queue is not None:
        done_queue.put(report.to_dict())
