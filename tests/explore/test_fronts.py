"""Front history: byte stability, deltas; dashboard: structure and palette."""

from __future__ import annotations

import json

import pytest

from repro.explore import (
    FrontHistory,
    FrontView,
    pair_slug,
    pareto_front,
    parse_metric,
    render_dashboard,
)
from repro.explore.fronts import FRONT_HISTORY_VERSION, front_digest, front_rows

from queue_helpers import FAST_SETTINGS, fake_evaluate, smoke_specs

METRICS = [parse_metric("accuracy"), parse_metric("energy")]


def make_points(count=6):
    """Deterministic DesignPoints over the first *count* smoke specs."""
    return [
        fake_evaluate(spec, FAST_SETTINGS, "batch", "event")
        for spec in smoke_specs(count)
    ]


# -------------------------------------------------------------------- history


def test_pair_slug_and_rows_are_deterministic():
    points = make_points()
    front = pareto_front(points, METRICS)
    assert pair_slug(METRICS) == "accuracy_vs_energy_per_inference_fj"
    rows = front_rows(front, METRICS)
    assert rows == front_rows(front, METRICS)
    assert front_digest(rows) == front_digest(front_rows(front, METRICS))
    # Values are %.6g strings — the Pareto-CSV formatting.
    for row in rows:
        assert isinstance(row["accuracy"], str)


def test_record_first_unchanged_and_moved_fronts():
    points = make_points()
    front = pareto_front(points, METRICS)
    history = FrontHistory()

    first = history.record("smoke", METRICS, front)
    assert first.changed and first.first
    assert len(history.entries) == 1

    again = history.record("smoke", METRICS, front)
    assert not again.changed
    assert len(history.entries) == 1  # unchanged front appends nothing

    moved = history.record("smoke", METRICS, front[:-1] if len(front) > 1
                           else pareto_front(points[:2], METRICS))
    assert moved.changed and not moved.first
    assert len(history.entries) == 2
    assert moved.added or moved.removed
    assert "MOVED" in moved.describe()


def test_grids_and_pairs_are_tracked_independently():
    points = make_points()
    other = [parse_metric("latency"), parse_metric("area")]
    history = FrontHistory()
    history.record("smoke", METRICS, pareto_front(points, METRICS))
    delta = history.record("smoke", other, pareto_front(points, other))
    assert delta.first  # a new pair starts its own lineage
    delta2 = history.record("nominal", METRICS, pareto_front(points, METRICS))
    assert delta2.first  # and so does a new grid
    assert len(history.entries) == 3


def test_history_file_is_byte_stable(tmp_path):
    points = make_points()
    front = pareto_front(points, METRICS)
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"

    history = FrontHistory()
    history.record("smoke", METRICS, front)
    history.save(path_a)

    # Load → record the same front → save: the bytes must not move.
    reloaded = FrontHistory.load(path_a)
    delta = reloaded.record("smoke", METRICS, front)
    assert not delta.changed
    reloaded.save(path_b)
    assert path_a.read_bytes() == path_b.read_bytes()

    payload = json.loads(path_a.read_text())
    assert payload["version"] == FRONT_HISTORY_VERSION
    assert payload["entries"][0]["seq"] == 1


def test_load_missing_file_and_version_mismatch(tmp_path):
    assert FrontHistory.load(tmp_path / "absent.json").entries == []
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 999, "entries": []}))
    with pytest.raises(ValueError):
        FrontHistory.load(bad)


# ------------------------------------------------------------------ dashboard


def render(points=None, **progress):
    points = make_points() if points is None else points
    view = FrontView(metrics=tuple(METRICS), points=points)
    census = {
        "total": len(points), "completed": len(points),
        "evaluated": len(points), "cached": 0, "reclaims": 0,
        "quarantined": (),
    }
    census.update(progress)
    return render_dashboard("DSE dashboard", census, [view]), view


def test_dashboard_is_self_contained_html():
    html_text, view = render()
    assert html_text.startswith("<!DOCTYPE html>")
    assert "<script" not in html_text  # static: no JS anywhere
    assert "http://" not in html_text and "https://" not in html_text
    assert "<svg" in html_text and "<table>" in html_text
    # Every front point appears in the table AND carries a hover tooltip.
    assert html_text.count("<title>") >= len(view.front) + 1  # + page title


def test_dashboard_palette_and_dark_mode():
    html_text, _ = render()
    # Reference palette slot 1 (blue), light and dark steps, as CSS vars.
    assert "--series-1: #2a78d6" in html_text
    assert "--series-1: #3987e5" in html_text
    assert "prefers-color-scheme: dark" in html_text
    assert '[data-theme="dark"]' in html_text
    # Text wears text tokens, never the series color.
    assert "--text-primary: #0b0b0b" in html_text
    assert "--surface-1: #fcfcfb" in html_text


def test_dashboard_legend_and_stat_tiles():
    html_text, _ = render(reclaims=3, quarantined=("bad/point/label",))
    assert "Pareto front" in html_text and "dominated" in html_text  # legend
    assert "leases reclaimed" in html_text
    assert "bad/point/label" in html_text  # quarantine list renders
    assert 'class="tile"' in html_text


def test_dashboard_escapes_labels():
    points = make_points(3)
    html_text = render_dashboard(
        "<script>alert(1)</script>",
        {"total": 3, "completed": 3, "quarantined": ("<img src=x>",)},
        [FrontView(metrics=tuple(METRICS), points=points)],
    )
    assert "<script>alert" not in html_text
    assert "<img src=x>" not in html_text


def test_front_view_computes_its_own_front():
    points = make_points()
    view = FrontView(metrics=tuple(METRICS), points=points)
    assert list(view.front) == pareto_front(points, METRICS)
    assert "accuracy" in view.title and "max" in view.title
