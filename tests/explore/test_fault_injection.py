"""Fault injection: SIGKILL, corrupt claims, corrupt store entries, frozen hearts.

The distributed queue's whole value proposition is surviving exactly these
events, so each one is induced deliberately and the recovery is pinned:

* a worker SIGKILLed mid-evaluation loses its lease after the TTL; the
  surviving (or restarted) workers finish the grid with **zero duplicated
  evaluations** and a store byte-identical to an undisturbed run;
* a corrupt lease file is reclaimed like a stale one;
* a corrupt store entry self-heals — loudly (``dse_store_corrupt_total``)
  — and the point is simply re-evaluated;
* a worker whose heartbeat froze (live process, dead renewal) loses its
  lease to a reclaim, by the clock, deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.explore import (
    ResultStore,
    front_csv,
    journal_events,
    journal_stats,
    pareto_front,
    parse_metric,
    write_manifest,
)
from repro.explore.queue import DseWorker, WorkQueue
from repro.obs import metrics as _metrics

from queue_helpers import (
    FAST_SETTINGS,
    slow_fake_evaluate,
    smoke_specs,
    worker_process,
)

fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

METRICS = [parse_metric("accuracy"), parse_metric("energy")]


def _drain_reference(tmp_path, specs):
    """An undisturbed single-worker run: the byte-identity reference."""
    store = ResultStore(tmp_path / "reference")
    write_manifest(store.directory, specs, settings=FAST_SETTINGS)
    DseWorker(
        store_dir=store.directory, evaluator=slow_fake_evaluate, lease_ttl=30.0
    ).run()
    return store


def _front(store):
    tasks = WorkQueue(store.directory).tasks()
    points = [store.get(task.key) for task in tasks]
    assert all(point is not None for point in points)
    return front_csv(pareto_front(points, METRICS), METRICS)


def _wait_for_completes(store_dir, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal_stats(journal_events(store_dir))["completes"] >= count:
            return
        time.sleep(0.02)
    raise AssertionError(f"journal never reached {count} completions")


@fork
def test_sigkill_mid_evaluation_resumes_without_duplicates(tmp_path):
    """Kill one of two workers mid-point; the survivor finishes the grid."""
    specs = smoke_specs(8)
    reference = _drain_reference(tmp_path, specs)

    store = ResultStore(tmp_path / "chaos")
    write_manifest(store.directory, specs, settings=FAST_SETTINGS)
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(
            target=worker_process,
            args=(str(store.directory), f"victim-{i}" if i == 0 else f"worker-{i}"),
            kwargs={"lease_ttl": 1.0},
        )
        for i in range(2)
    ]
    for proc in procs:
        proc.start()
    # Let the run get going, then SIGKILL worker 0 — with a 0.2 s evaluation
    # per point it is overwhelmingly mid-evaluation, holding a live lease.
    _wait_for_completes(store.directory, 2)
    os.kill(procs[0].pid, signal.SIGKILL)
    procs[0].join(timeout=10)
    procs[1].join(timeout=60)
    assert procs[1].exitcode == 0

    queue = WorkQueue(store.directory)
    progress = queue.progress()
    assert progress.done and progress.quarantined == 0

    stats = journal_stats(journal_events(store.directory))
    assert stats["duplicate_completes"] == 0, "a point was evaluated twice"
    assert stats["completes"] == len(specs)
    # The killed worker's in-flight lease was reclaimed, not forgotten.
    assert stats["reclaims"] >= 1

    assert store.entry_digests() == reference.entry_digests()
    assert _front(store) == _front(reference)


@fork
def test_killed_run_resumes_from_a_fresh_worker(tmp_path):
    """Kill the ONLY worker, then start a new one: classic crash-resume."""
    specs = smoke_specs(6)
    reference = _drain_reference(tmp_path, specs)

    store = ResultStore(tmp_path / "chaos")
    write_manifest(store.directory, specs, settings=FAST_SETTINGS)
    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(
        target=worker_process, args=(str(store.directory), "victim"),
        kwargs={"lease_ttl": 1.0},
    )
    victim.start()
    _wait_for_completes(store.directory, 2)
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10)

    before = journal_stats(journal_events(store.directory))
    assert before["completes"] < len(specs), "victim died too late to matter"

    # The "rerun the same command" path: a brand-new worker, same store.
    DseWorker(
        store_dir=store.directory, owner="resumer",
        evaluator=slow_fake_evaluate, lease_ttl=1.0,
    ).run()

    stats = journal_stats(journal_events(store.directory))
    assert stats["completes"] == len(specs)
    assert stats["duplicate_completes"] == 0
    assert store.entry_digests() == reference.entry_digests()
    assert _front(store) == _front(reference)
    # Resume overhead: only the victim's in-flight points were re-claimed.
    assert stats["extra_claims"] <= 1


def test_corrupt_claim_file_is_reclaimed(tmp_path):
    """Garbage in a lease file must not wedge its point forever."""
    specs = smoke_specs(2)
    write_manifest(tmp_path, specs, settings=FAST_SETTINGS)
    queue = WorkQueue(tmp_path, owner="healer", lease_ttl=30.0)
    task = queue.tasks()[0]
    queue.leases_dir.mkdir(parents=True, exist_ok=True)
    queue._lease_path(task.key).write_text("{ definitely not a lease")

    lease = queue.try_claim(task)
    assert lease is not None, "corrupt lease blocked the claim"
    assert lease.attempt == 2  # the reclaim consumed one attempt
    events = journal_events(tmp_path)
    reclaim = next(e for e in events if e["event"] == "reclaim")
    assert reclaim["corrupt"] is True


def test_corrupt_store_entry_self_heals_mid_run(tmp_path):
    """A damaged completed entry is re-evaluated, loudly, on the next pass."""
    specs = smoke_specs(3)
    store = ResultStore(tmp_path)
    write_manifest(store.directory, specs, settings=FAST_SETTINGS)
    DseWorker(
        store_dir=store.directory, evaluator=slow_fake_evaluate, lease_ttl=30.0
    ).run()
    healthy = store.entry_digests()
    assert len(healthy) == len(specs)

    # Corrupt one completed entry on disk (bit-rot / torn write).
    victim_key = WorkQueue(store.directory).tasks()[1].key
    (store.directory / f"{victim_key}.json").write_text("{ torn write")

    counter = _metrics.default_registry().counter(
        "dse_store_corrupt_total",
        "ResultStore entries that failed validation and were healed.",
    )
    before = counter.value()
    DseWorker(
        store_dir=store.directory, evaluator=slow_fake_evaluate, lease_ttl=30.0
    ).run()
    assert counter.value() == before + 1  # healing was not silent

    assert store.entry_digests() == healthy  # bytes restored exactly
    stats = journal_stats(journal_events(store.directory))
    assert stats["completes"] == len(specs) + 1  # one point re-evaluated
    assert stats["duplicate_completes"] == 1  # ... and the journal shows it


def test_frozen_heartbeat_loses_the_lease_by_the_clock(tmp_path):
    """Deterministic stale-lease reclaim with an injected clock."""
    specs = smoke_specs(1)
    write_manifest(tmp_path, specs, settings=FAST_SETTINGS)
    now = [1000.0]
    clock = lambda: now[0]  # noqa: E731 - injectable test clock
    frozen = WorkQueue(tmp_path, owner="frozen", lease_ttl=5.0, clock=clock)
    vulture = WorkQueue(tmp_path, owner="vulture", lease_ttl=5.0, clock=clock)
    task = frozen.tasks()[0]
    lease = frozen.try_claim(task)
    assert lease is not None

    # While the heart beats, the lease holds.
    now[0] += 3.0
    assert vulture.try_claim(task) is None
    assert frozen.heartbeat(lease)

    # The heartbeat freezes; once the TTL passes, the reclaim succeeds.
    now[0] += 5.1
    registry = _metrics.default_registry()
    reclaimed = registry.counter(
        "dse_leases_reclaimed_total", "Stale or corrupt DSE leases taken over."
    )
    before = reclaimed.value()
    stolen = vulture.try_claim(task)
    assert stolen is not None and stolen.owner == "vulture"
    assert stolen.attempt == 2
    assert reclaimed.value() == before + 1

    # The frozen owner notices on its next heartbeat: renewal is refused.
    assert not frozen.heartbeat(lease)
