"""Contract tests for :class:`repro.sim.backends.session.BackendSession`.

The load-bearing property: a session bound to the constant input nets is a
pure refactoring of the call site — ``session.run_arrays(varying)`` and
``session.run_timed(varying, spacer)`` are bit-identical to handing the
backend the fully merged stimulus directly, on both vectorized backends.
The serving worker relies on this to bind the exclude-rail configuration
once and stream only feature planes per micro-batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.measure import (
    build_mapped_dual_rail,
    default_workload,
    spacer_assignments,
    workload_input_planes,
)
from repro.sim.backends import (
    BackendError,
    BackendSession,
    BatchBackend,
    BitpackBackend,
    EventBackend,
)


@pytest.fixture(scope="module")
def workload():
    return default_workload(num_features=4, clauses_per_polarity=8, num_operands=12)


def _split_planes(planes):
    """Split full input planes into (constant scalars, varying arrays)."""
    constants, varying = {}, {}
    for net, plane in planes.items():
        plane = np.asarray(plane)
        if np.all(plane == plane.flat[0]):
            constants[net] = int(plane.flat[0])
        else:
            varying[net] = plane
    assert constants and varying, "test needs both kinds of net"
    return constants, varying


@pytest.mark.parametrize("backend_cls", [BatchBackend, BitpackBackend])
def test_session_run_arrays_matches_direct_merged_call(umc, workload, backend_cls):
    """Functional results are bit-identical to the unmerged direct call."""
    mapped = build_mapped_dual_rail(workload.config, umc)
    backend = backend_cls(mapped.circuit.netlist, umc)
    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    constants, varying = _split_planes(planes)

    direct = backend.run_arrays(planes)
    session = BackendSession(backend, constants)
    via_session = session.run_arrays(varying)

    assert via_session.samples == direct.samples
    for rail in mapped.circuit.all_output_rails():
        np.testing.assert_array_equal(via_session.values[rail], direct.values[rail])


@pytest.mark.parametrize("backend_cls", [BatchBackend, BitpackBackend])
def test_session_run_timed_matches_direct_merged_call(umc, workload, backend_cls):
    """Timed latency/energy are bit-identical to the unmerged direct call."""
    mapped = build_mapped_dual_rail(workload.config, umc)
    backend = backend_cls(mapped.circuit.netlist, umc)
    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    spacer = spacer_assignments(mapped.circuit)
    constants, varying = _split_planes(planes)
    rails = mapped.circuit.all_output_rails()

    direct = backend.run_timed(planes, spacer)
    session = BackendSession(backend, constants)
    via_session = session.run_timed(varying, spacer)

    np.testing.assert_array_equal(
        via_session.max_arrival(rails, "valid"), direct.max_arrival(rails, "valid")
    )
    np.testing.assert_array_equal(
        via_session.energy_per_sample_fj, direct.energy_per_sample_fj
    )


def test_session_reuses_cached_constant_planes(umc, workload):
    """Same batch size -> the broadcast constant planes are built once."""
    mapped = build_mapped_dual_rail(workload.config, umc)
    backend = BatchBackend(mapped.circuit.netlist, umc)
    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    constants, varying = _split_planes(planes)
    session = BackendSession(backend, constants)

    session.run_arrays(varying)
    first = session._plane_cache[workload.num_operands]
    session.run_arrays(varying)
    assert session._plane_cache[workload.num_operands] is first

    ragged = {net: plane[:5] for net, plane in varying.items()}
    session.run_arrays(ragged)
    assert set(session._plane_cache) == {workload.num_operands, 5}


def test_session_rejects_overlapping_and_unknown_nets(umc, workload):
    """Overlap with bound constants and unknown nets fail loudly."""
    mapped = build_mapped_dual_rail(workload.config, umc)
    backend = BatchBackend(mapped.circuit.netlist, umc)
    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    constants, varying = _split_planes(planes)

    with pytest.raises(KeyError, match="does not exist"):
        BackendSession(backend, {"no_such_net": 1})
    with pytest.raises(BackendError, match="must be Boolean"):
        BackendSession(backend, {next(iter(constants)): 2})

    session = BackendSession(backend, constants)
    overlap_net = next(iter(constants))
    bad = dict(varying)
    bad[overlap_net] = np.zeros(workload.num_operands, dtype=np.uint8)
    with pytest.raises(BackendError, match="overlap bound constants"):
        session.run_arrays(bad)


def test_session_requires_a_vectorized_backend(umc, workload):
    """The event backend has no run_arrays; sessions refuse it upfront."""
    mapped = build_mapped_dual_rail(workload.config, umc)
    event = EventBackend(mapped.circuit.netlist, umc)
    with pytest.raises(BackendError, match="run_arrays"):
        BackendSession(event)
