"""Cross-backend differential fuzzing over randomized mapped netlists.

The contract this suite enforces mechanically: the fused grouped/codegen
kernel engine (:mod:`repro.sim.kernels`) is **bit-identical** to the looped
per-cell interpreter — settled net values *and* switching-activity counts —
for both vectorized encodings, and both agree with the event-driven
reference on settled values.  (Event-simulator activity is glitch-inclusive
by design, so transition counts are cross-checked between the vectorized
paths only; see :meth:`repro.sim.backends.event.EventBackend.run_batch`.)

Each seed deterministically derives a datapath shape (width, clause count,
completion scheme, gate style, library, mapped or structural netlist) and a
stimulus matrix spanning the lane-packing edge cases — 1/63/64/65/1000
samples, all-spacer rest words, and X-laden partial assignments.  Failures
print the offending seed and the ``program_hash`` so a case can be replayed
(and shrunk) in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.measure import (
    build_mapped_dual_rail,
    spacer_assignments,
)
from repro.circuits import full_diffusion_library, umc_ll_library
from repro.datapath.datapath import DatapathConfig, DualRailDatapath
from repro.sim import compile_program
from repro.sim.backends import EventBackend
from repro.sim.backends.batch import BatchBackend
from repro.sim.backends.bitpack import BitpackBackend

#: The fixed seed matrix CI replays (kernel-smoke job).  Each seed is an
#: independent random netlist + stimulus; extend the list to widen the net.
FUZZ_SEEDS = [101, 202, 303, 404]

#: Batch sizes covering the bitpack lane boundaries (1 word, word-1,
#: exactly one word, word+1, many ragged words).
BATCH_SIZES = (1, 63, 64, 65, 1000)

_LIBRARIES = {
    "umc": umc_ll_library,
    "full_diffusion": full_diffusion_library,
}


def _fuzz_case(seed):
    """Deterministically derive one random netlist + stimulus from *seed*."""
    rng = np.random.default_rng(seed)
    config = DatapathConfig(
        num_features=int(rng.integers(2, 5)),
        clauses_per_polarity=int(rng.integers(1, 4)),
        latch_inputs=bool(rng.integers(0, 2)),
        negative_gates=bool(rng.integers(0, 2)),
        completion=[None, "reduced", "full"][int(rng.integers(0, 3))],
    )
    library_name = ["umc", "full_diffusion"][int(rng.integers(0, 2))]
    library = _LIBRARIES[library_name]()
    if rng.integers(0, 2):
        # Technology-mapped variant (synthesized, interface re-bound).
        circuit = build_mapped_dual_rail(config, library).circuit
    else:
        # Structural datapath netlist straight out of the generator.
        circuit = DualRailDatapath(config, library=library).circuit
    return rng, circuit, library


def _random_stimulus(rng, circuit, samples):
    """Random Boolean planes for a random subset of the primary inputs.

    Leaving some inputs unassigned is the X-laden part of the matrix:
    unassigned rails must propagate unknowns identically in every engine.
    """
    nets = list(circuit.netlist.primary_inputs)
    keep = max(1, int(rng.integers(len(nets) // 2, len(nets) + 1)))
    chosen = list(rng.choice(nets, size=keep, replace=False))
    return {
        net: rng.integers(0, 2, size=samples, dtype=np.uint8)
        for net in chosen
    }


def _context(seed, program, detail):
    """Shrinking-friendly failure message: seed + program hash + detail."""
    return (
        f"differential fuzz mismatch (seed={seed}, "
        f"program_hash={program.program_hash}): {detail}"
    )


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fused_paths_bit_identical_across_batch_shapes(seed):
    """Looped vs grouped vs codegen: values and activity, every lane shape."""
    rng, circuit, library = _fuzz_case(seed)
    netlist = circuit.netlist
    program = compile_program(netlist, library)
    spacer = spacer_assignments(circuit)
    backends = {
        ("batch", mode): BatchBackend(netlist, library, program=program, fused=mode)
        for mode in ("off", "grouped", "codegen")
    }
    backends.update({
        ("bitpack", mode): BitpackBackend(
            netlist, library, program=program, fused=mode
        )
        for mode in ("off", "grouped", "codegen")
    })
    for samples in BATCH_SIZES:
        stimulus = _random_stimulus(rng, circuit, samples)
        reference = backends[("batch", "off")].run_arrays(
            stimulus, baseline=spacer
        )
        ref_values = {net: reference.values[net] for net in program.nets}
        for (kind, mode), backend in backends.items():
            if (kind, mode) == ("batch", "off"):
                continue
            result = backend.run_arrays(stimulus, baseline=spacer)
            assert result.samples == samples, _context(
                seed, program, f"{kind}/{mode} samples at {samples}"
            )
            for net in program.nets:
                assert np.array_equal(ref_values[net], result.values[net]), (
                    _context(
                        seed, program,
                        f"{kind}/{mode} values of {net!r} at {samples} samples",
                    )
                )
            assert result.activity_by_cell == reference.activity_by_cell, (
                _context(
                    seed, program,
                    f"{kind}/{mode} per-cell activity at {samples} samples",
                )
            )
            assert (
                result.activity_by_cell_type == reference.activity_by_cell_type
            ), _context(
                seed, program,
                f"{kind}/{mode} per-type activity at {samples} samples",
            )


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_all_spacer_rest_word_identical(seed):
    """The all-spacer stimulus settles identically on every engine."""
    _, circuit, library = _fuzz_case(seed)
    netlist = circuit.netlist
    program = compile_program(netlist, library)
    spacer = spacer_assignments(circuit)
    reference = BatchBackend(
        netlist, library, program=program, fused="off"
    ).run_arrays(spacer)
    for kind, mode in (
        ("batch", "grouped"), ("batch", "codegen"),
        ("bitpack", "off"), ("bitpack", "grouped"), ("bitpack", "codegen"),
    ):
        cls = BatchBackend if kind == "batch" else BitpackBackend
        result = cls(netlist, library, program=program, fused=mode).run_arrays(
            spacer
        )
        for net in program.nets:
            assert np.array_equal(reference.values[net], result.values[net]), (
                _context(seed, program, f"{kind}/{mode} spacer value of {net!r}")
            )


@pytest.mark.parametrize("seed", FUZZ_SEEDS[:2])
def test_event_reference_agrees_on_settled_values(seed):
    """Every engine's settled values match the event-driven simulator.

    The event reference settles one sample at a time, so only a small
    X-laden sample subset is replayed through it.
    """
    rng, circuit, library = _fuzz_case(seed)
    netlist = circuit.netlist
    program = compile_program(netlist, library)
    event = EventBackend(netlist, library)
    stimulus = _random_stimulus(rng, circuit, 3)
    for k in range(3):
        assignments = {net: int(plane[k]) for net, plane in stimulus.items()}
        expected = event.evaluate(assignments)
        for kind, mode in (
            ("batch", "off"), ("batch", "grouped"), ("batch", "codegen"),
            ("bitpack", "off"), ("bitpack", "grouped"), ("bitpack", "codegen"),
        ):
            cls = BatchBackend if kind == "batch" else BitpackBackend
            backend = cls(netlist, library, program=program, fused=mode)
            got = backend.evaluate(assignments)
            assert got == expected, _context(
                seed, program, f"event vs {kind}/{mode} on sample {k}"
            )
