"""Unit tests for the event queue, waveform store and gate-level simulator."""

import pytest

from repro.circuits import LogicBuilder
from repro.sim import EventQueue, GateLevelSimulator, SimulationError, Waveform


def test_event_queue_orders_by_time_then_sequence():
    queue = EventQueue()
    queue.schedule(10.0, "b", 1)
    queue.schedule(5.0, "a", 1)
    queue.schedule(5.0, "c", 0)
    first = queue.pop()
    second = queue.pop()
    third = queue.pop()
    assert first.net == "a" and second.net == "c" and third.net == "b"


def test_event_queue_pop_simultaneous_batches_equal_times():
    queue = EventQueue()
    queue.schedule(3.0, "a", 1)
    queue.schedule(3.0, "b", 0)
    queue.schedule(7.0, "c", 1)
    batch = queue.pop_simultaneous()
    assert {e.net for e in batch} == {"a", "b"}
    assert len(queue) == 1


def test_event_queue_rejects_negative_time():
    with pytest.raises(ValueError):
        EventQueue().schedule(-1.0, "a", 1)


def test_waveform_records_and_queries_values():
    wave = Waveform()
    wave.record("x", 0.0, 0)
    wave.record("x", 10.0, 1)
    wave.record("x", 10.0, 1)  # duplicate value is collapsed
    assert wave.value_at("x", 5.0) == 0
    assert wave.value_at("x", 15.0) == 1
    # transition_count counts changes strictly after `since` (default 0.0),
    # so the power-up assignment at t=0 is excluded.
    assert wave.trace("x").transition_count() == 1
    assert wave.trace("x").transition_count(since=-1.0) == 2
    assert wave.first_transition_after("x", 0.0, lambda v: v == 1) == 10.0


def test_simulator_propagates_through_gate_chain(umc):
    builder = LogicBuilder("chain")
    a = builder.input("a")
    y = builder.not_(builder.not_(builder.not_(a)))
    builder.output("y", y)
    sim = GateLevelSimulator(builder.netlist, umc)
    sim.set_input("a", 1)
    sim.settle()
    assert sim.value("y") == 0
    sim.set_input("a", 0)
    sim.settle()
    assert sim.value("y") == 1


def test_simulator_delay_accumulates_over_levels(umc):
    builder = LogicBuilder("delay")
    a = builder.input("a")
    one = builder.not_(a)
    two = builder.not_(one)
    builder.output("y", two)
    sim = GateLevelSimulator(builder.netlist, umc)
    sim.set_input("a", 1)
    end = sim.settle()
    single_inv = umc.cell_delay("INV", 0.0)
    assert end > single_inv  # two inverter levels plus the output buffer


def test_simulator_respects_supply_voltage_scaling(umc):
    builder = LogicBuilder("vdd")
    a = builder.input("a")
    builder.output("y", builder.not_(a))
    fast = GateLevelSimulator(builder.netlist, umc, vdd=1.2)
    slow = GateLevelSimulator(builder.netlist, umc, vdd=0.7)
    fast.set_input("a", 1)
    slow.set_input("a", 1)
    assert slow.settle() > fast.settle()


def test_simulator_rejects_non_functional_voltage(umc):
    builder = LogicBuilder("toolow")
    a = builder.input("a")
    builder.output("y", builder.not_(a))
    with pytest.raises(SimulationError):
        GateLevelSimulator(builder.netlist, umc, vdd=0.2)


def test_simulator_glitch_resolves_to_final_value(umc):
    # A two-input OR whose inputs swap with different arrival times must end
    # at the correct steady-state value regardless of intermediate events.
    builder = LogicBuilder("glitch")
    a, b = builder.input("a"), builder.input("b")
    builder.output("y", builder.or_(a, b))
    sim = GateLevelSimulator(builder.netlist, umc)
    sim.set_inputs({"a": 1, "b": 0})
    sim.settle()
    assert sim.value("y") == 1
    # Swap the inputs with a slight skew: a falls now, b rises a bit later.
    sim.set_input("a", 0)
    sim.set_input("b", 1, at=sim.time + 5.0)
    sim.settle()
    assert sim.value("y") == 1
    # Now both fall with a skew; the output must settle to 0.
    sim.set_input("b", 0)
    sim.set_input("a", 0, at=sim.time + 3.0)
    sim.settle()
    assert sim.value("y") == 0


def test_dff_samples_on_rising_edge(umc):
    builder = LogicBuilder("ff")
    d, clk = builder.input("d"), builder.input("clk")
    builder.output("q", builder.dff(d, clk))
    sim = GateLevelSimulator(builder.netlist, umc)
    sim.set_inputs({"d": 1, "clk": 0})
    sim.settle()
    assert sim.value("q") is None  # not yet clocked
    sim.set_input("clk", 1)
    sim.settle()
    assert sim.value("q") == 1
    # Changing D with the clock high must not propagate until the next edge.
    sim.set_input("d", 0)
    sim.settle()
    assert sim.value("q") == 1
    sim.set_input("clk", 0)
    sim.settle()
    sim.set_input("clk", 1)
    sim.settle()
    assert sim.value("q") == 0


def test_c_element_holds_state(umc):
    builder = LogicBuilder("celem")
    a, b = builder.input("a"), builder.input("b")
    builder.output("q", builder.c_element(a, b))
    sim = GateLevelSimulator(builder.netlist, umc)
    sim.set_inputs({"a": 0, "b": 0})
    sim.settle()
    assert sim.value("q") == 0
    sim.set_inputs({"a": 1, "b": 0})
    sim.settle()
    assert sim.value("q") == 0  # holds until both inputs agree
    sim.set_input("b", 1)
    sim.settle()
    assert sim.value("q") == 1
    sim.set_input("a", 0)
    sim.settle()
    assert sim.value("q") == 1  # holds again


def test_transition_log_and_statistics(umc):
    builder = LogicBuilder("stats")
    a = builder.input("a")
    builder.output("y", builder.not_(a))
    sim = GateLevelSimulator(builder.netlist, umc)
    sim.set_input("a", 1)
    sim.settle()
    histogram = sim.transition_count_by_cell_type()
    assert histogram.get("INV") == 1
    sim.reset_statistics()
    assert sim.transition_count_by_cell_type() == {}
