"""Unit tests for the fused grouped-kernel engine (:mod:`repro.sim.kernels`).

The differential fuzz suite proves bit-identity on real datapath netlists;
this file covers what those netlists never reach: the full dispatch
vocabulary (MAJ3, XOR2/XNOR2 and the AOI/OAI/AO/OA complex gates), the
mode-resolution and error surfaces, the bulk stimulus pack's edge inputs,
the rest-state memo key, and the codegen tier's on-disk source cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.netlist import Netlist
from repro.sim import compile_program
from repro.sim.backends import BackendError
from repro.sim.backends.batch import BatchBackend
from repro.sim.backends.bitpack import BitpackBackend
from repro.sim.kernels import (
    FUSED_ENV_VAR,
    KERNEL_CODEGEN_VERSION,
    FusedKernel,
    baseline_memo_key,
    build_grouped_plan,
    bulk_stimulus_matrix,
    generate_kernel_source,
    resolve_fused_mode,
)
from repro.sim.program_cache import ProgramCache


def _all_tags_netlist() -> Netlist:
    """One cell of every dispatch tag, plus a second level off the AND."""
    net = Netlist("all-tags")
    for name in ("a", "b", "c"):
        net.add_input(name)
    net.add_cell("INV", {"A": "a"}, {"Y": "n_inv"}, name="g_inv")
    net.add_cell("BUF", {"A": "b"}, {"Y": "n_buf"}, name="g_buf")
    net.add_cell("AND2", {"A": "a", "B": "b"}, {"Y": "n_and"}, name="g_and")
    net.add_cell("NAND3", {"A": "a", "B": "b", "C": "c"}, {"Y": "n_nand"}, name="g_nand")
    net.add_cell("OR2", {"A": "a", "B": "c"}, {"Y": "n_or"}, name="g_or")
    net.add_cell("NOR2", {"A": "b", "B": "c"}, {"Y": "n_nor"}, name="g_nor")
    net.add_cell("XOR2", {"A": "a", "B": "b"}, {"Y": "n_xor"}, name="g_xor")
    net.add_cell("XNOR2", {"A": "a", "B": "c"}, {"Y": "n_xnor"}, name="g_xnor")
    net.add_cell("MAJ3", {"A": "a", "B": "b", "C": "c"}, {"Y": "n_maj"}, name="g_maj")
    net.add_cell("C2", {"A": "a", "B": "b"}, {"Y": "n_c"}, name="g_c")
    net.add_cell(
        "AOI21", {"A1": "a", "A2": "b", "B": "c"}, {"Y": "n_aoi"}, name="g_aoi"
    )
    net.add_cell(
        "OAI21", {"A1": "a", "A2": "c", "B": "b"}, {"Y": "n_oai"}, name="g_oai"
    )
    net.add_cell(
        "AO22", {"A1": "a", "A2": "b", "B1": "b", "B2": "c"}, {"Y": "n_ao"},
        name="g_ao",
    )
    net.add_cell(
        "OA22", {"A1": "a", "A2": "b", "B1": "a", "B2": "c"}, {"Y": "n_oa"},
        name="g_oa",
    )
    # A second level, so the per-level sweep and codegen level spans run.
    net.add_cell("INV", {"A": "n_and"}, {"Y": "n_and_n"}, name="g_inv2")
    for name in net.nets:
        if name not in ("a", "b", "c"):
            net.add_output(name)
    return net


@pytest.fixture(scope="module")
def all_tags_program():
    return compile_program(_all_tags_netlist())


@pytest.mark.parametrize("samples", [5, 130])
@pytest.mark.parametrize("mode", ["grouped", "codegen"])
@pytest.mark.parametrize("cls", [BatchBackend, BitpackBackend])
def test_every_dispatch_tag_matches_looped(all_tags_program, cls, mode, samples):
    """Fused engines agree with the looped path on every cell shape."""
    program = all_tags_program
    rng = np.random.default_rng(7)
    stimulus = {
        "a": rng.integers(0, 2, size=samples, dtype=np.uint8),
        "b": rng.integers(0, 2, size=samples, dtype=np.uint8),
        # "c" left unassigned: X pushes through the non-unate and complex
        # evaluators' known-masks, not just the Boolean fast paths.
    }
    baseline = {"a": 0, "b": 0, "c": 0}
    looped = cls(program=program, fused="off").run_arrays(stimulus, baseline=baseline)
    fused = cls(program=program, fused=mode).run_arrays(stimulus, baseline=baseline)
    for net in program.nets:
        assert np.array_equal(looped.values[net], fused.values[net]), net
    assert fused.activity_by_cell == looped.activity_by_cell
    assert fused.activity_by_cell_type == looped.activity_by_cell_type
    # The plane views quack like the dict the looped path returns.
    assert set(fused.values) == set(looped.values)
    assert len(fused.values) == len(looped.values)
    assert "n_maj" in fused.values and "nope" not in fused.values


def test_resolve_fused_mode_arguments_and_env(monkeypatch):
    assert resolve_fused_mode(True) == "grouped"
    assert resolve_fused_mode(False) == "off"
    assert resolve_fused_mode("CODEGEN") == "codegen"
    monkeypatch.delenv(FUSED_ENV_VAR, raising=False)
    assert resolve_fused_mode(None) == "grouped"
    monkeypatch.setenv(FUSED_ENV_VAR, "off")
    assert resolve_fused_mode(None) == "off"
    monkeypatch.setenv(FUSED_ENV_VAR, "  ")
    assert resolve_fused_mode(None) == "grouped"
    with pytest.raises(BackendError, match="unrecognized fused-kernel mode"):
        resolve_fused_mode("turbo")


def test_unknown_kind_and_mode_are_rejected(all_tags_program):
    plan = build_grouped_plan(all_tags_program)
    with pytest.raises(BackendError, match="backend kind"):
        generate_kernel_source(plan, "simd")
    with pytest.raises(BackendError, match="backend kind"):
        FusedKernel(all_tags_program, "simd", "grouped")
    with pytest.raises(BackendError, match="cannot run in mode"):
        FusedKernel(all_tags_program, "batch", "off")


def test_unvectorizable_cell_type_is_rejected():
    """A program op outside the dispatch vocabulary fails plan building."""
    net = Netlist("tiny")
    net.add_input("a")
    net.add_cell("INV", {"A": "a"}, {"Y": "y"}, name="g")
    net.add_output("y")
    record = compile_program(net).to_dict()
    record["ops"][0][1] = "WEIRD9"  # cell_type field of the serialized op
    from repro.sim.program import CompiledProgram

    with pytest.raises(BackendError, match="cannot vectorize cell type"):
        build_grouped_plan(CompiledProgram.from_dict(record))


def test_cell_free_program_generates_pass_kernel():
    net = Netlist("wires-only")
    net.add_input("a")
    net.add_output("a")
    program = compile_program(net)
    source = generate_kernel_source(build_grouped_plan(program), "batch")
    assert "pass" in source
    result = BatchBackend(program=program, fused="codegen").run_arrays(
        {"a": np.asarray([1, 0, 1], dtype=np.uint8)}
    )
    assert result.values["a"].tolist() == [1, 0, 1]


def test_bulk_stimulus_matrix_edge_inputs(all_tags_program):
    net_index = build_grouped_plan(all_tags_program).net_index
    # 0-d arrays and Python lists are both valid plane spellings.
    rows, stacked, samples = bulk_stimulus_matrix(
        {"a": np.uint8(1), "b": [0, 1, 0], "c": 0}, net_index
    )
    assert samples == 3
    assert stacked[list(rows).index(net_index["b"])].tolist() == [0, 1, 0]
    with pytest.raises(KeyError, match="unknown net"):
        bulk_stimulus_matrix({"zz": 1}, net_index)
    with pytest.raises(BackendError, match="inconsistent batch sizes"):
        bulk_stimulus_matrix({"a": [0, 1], "b": [0, 1, 0]}, net_index)
    with pytest.raises(BackendError, match="non-Boolean"):
        bulk_stimulus_matrix({"a": [0, 2]}, net_index)


def test_baseline_memo_key_hashable_or_none():
    assert baseline_memo_key({"b": 1, "a": 0}) == (("a", 0), ("b", 1))
    assert baseline_memo_key({"a": np.uint8(1)}) == (("a", 1),)
    # Array-valued and non-integral baselines cannot be memoized.
    assert baseline_memo_key({"a": np.asarray([0, 1])}) is None
    assert baseline_memo_key({"a": float("nan")}) is None


def test_codegen_source_round_trips_through_program_cache(tmp_path, all_tags_program):
    program = all_tags_program
    store = ProgramCache(tmp_path)
    cold = FusedKernel(program, "bitpack", "codegen", store=store)
    path = store.kernel_source_path(
        program.program_hash, "bitpack", version=KERNEL_CODEGEN_VERSION
    )
    assert path.exists()
    assert store.load_kernel_source(
        program.program_hash, "bitpack", version=KERNEL_CODEGEN_VERSION
    ) == cold.source
    warm = FusedKernel(program, "bitpack", "codegen", store=store)
    assert warm.source == cold.source
    looped = BitpackBackend(program=program, fused="off")
    cached = BitpackBackend(
        program=program, fused="codegen", kernel_store=store
    )
    stimulus = {"a": np.asarray([1, 0, 1, 1], dtype=np.uint8), "b": 1, "c": 0}
    a = looped.run_arrays(stimulus)
    b = cached.run_arrays(stimulus)
    for net in program.nets:
        assert np.array_equal(a.values[net], b.values[net]), net
