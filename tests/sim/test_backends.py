"""Equivalence and contract tests for the pluggable simulation backends.

The load-bearing property: the vectorized batch backend, the event-driven
simulator and the software golden model (:class:`InferenceModel`) must agree
on every functional quantity — settled net values gate for gate, decoded
verdicts, and classification decisions — across randomized datapath shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dual_rail import encode_bit
from repro.datapath.datapath import DualRailDatapath
from repro.analysis import random_workload
from repro.sim.backends import (
    BackendError,
    BatchBackend,
    EventBackend,
    available_backends,
    get_backend,
)


def _rail_assignments(circuit, operand):
    """Logical operand values -> primary-input rail assignments."""
    assignments = {}
    for sig in circuit.inputs:
        pos, neg = encode_bit(operand[sig.name])
        assignments[sig.pos] = pos
        assignments[sig.neg] = neg
    return assignments


def _spacer_assignments(circuit):
    spacer = {}
    for sig in circuit.inputs:
        value = sig.polarity.spacer_rail_value
        spacer[sig.pos] = value
        spacer[sig.neg] = value
    return spacer


def test_backend_registry_names():
    assert "event" in available_backends()
    assert "batch" in available_backends()
    assert "bitpack" in available_backends()
    with pytest.raises(BackendError, match="unknown simulation backend"):
        get_backend("nope", None, None)


@pytest.mark.parametrize("vectorized", ["batch", "bitpack"])
@pytest.mark.parametrize(
    "num_features,clauses_per_polarity,seed",
    [(2, 2, 11), (3, 4, 23), (4, 8, 47)],
)
def test_vectorized_matches_event_gate_for_gate(
    umc, num_features, clauses_per_polarity, seed, vectorized
):
    """Settled values of *every* net agree between each vectorized backend and event."""
    workload = random_workload(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        num_operands=4,
        seed=seed,
    )
    datapath = DualRailDatapath(workload.config)
    netlist = datapath.circuit.netlist
    fast = get_backend(vectorized, netlist, umc)
    event = get_backend("event", netlist, umc)
    for features in workload.feature_vectors:
        assignments = _rail_assignments(
            datapath.circuit, datapath.operand_assignments(features, workload.exclude)
        )
        event_values = event.evaluate(assignments)
        fast_values = fast.evaluate(assignments)
        assert event_values == fast_values


@pytest.mark.parametrize("backend_name", ["batch", "bitpack"])
@pytest.mark.parametrize(
    "num_features,clauses_per_polarity,seed",
    [(2, 2, 3), (3, 4, 5), (4, 8, 7), (5, 3, 13)],
)
def test_batch_decisions_match_inference_model(
    umc, num_features, clauses_per_polarity, seed, backend_name
):
    """The vectorized backends' decoded verdicts reproduce the golden model."""
    workload = random_workload(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        num_operands=24,
        seed=seed,
    )
    datapath = DualRailDatapath(workload.config)
    circuit = datapath.circuit
    backend = get_backend(backend_name, circuit.netlist, umc)
    batch = [
        _rail_assignments(circuit, datapath.operand_assignments(f, workload.exclude))
        for f in workload.feature_vectors
    ]
    result = backend.run_batch(batch, baseline=_spacer_assignments(circuit))
    verdict = circuit.one_of_n_outputs[0]
    for k, features in enumerate(workload.feature_vectors):
        rails = [result.net_values[r][k] for r in verdict.rails]
        assert None not in rails
        active = [i for i, v in enumerate(rails) if v != verdict.polarity.spacer_rail_value]
        assert len(active) == 1
        decision = DualRailDatapath.decision_from_verdict(verdict.labels[active[0]])
        assert decision == workload.model.decision(features)
    # Each handshake cycle toggles every switching gate exactly twice.
    assert result.transitions > 0
    assert result.transitions % 2 == 0


def test_event_backend_batch_interface(umc):
    """EventBackend.run_batch returns per-sample outputs and activity."""
    workload = random_workload(num_features=2, clauses_per_polarity=2, num_operands=3, seed=2)
    datapath = DualRailDatapath(workload.config)
    backend = EventBackend(datapath.circuit.netlist, umc)
    batch = [
        _rail_assignments(
            datapath.circuit, datapath.operand_assignments(f, workload.exclude)
        )
        for f in workload.feature_vectors
    ]
    result = backend.run_batch(batch)
    assert result.samples == 3
    assert len(result.outputs) == 3
    assert result.transitions > 0


def test_batch_backend_wraps_cycles_in_backend_error(umc):
    """Unsupported-netlist cases all surface as BackendError (the contract)."""
    from repro.circuits import Netlist

    net = Netlist("loop")
    net.add_input("a")
    net.add_cell("OR2", {"A": "a", "B": "fb"}, {"Y": "n1"}, name="g0")
    net.add_cell("INV", {"A": "n1"}, {"Y": "fb"}, name="g1")
    with pytest.raises(BackendError, match="levelizable"):
        BatchBackend(net, umc)


def test_batch_backend_rejects_clocked_netlists(umc):
    from repro.circuits import Netlist

    net = Netlist("clocked")
    net.add_input("d")
    net.add_input("ck")
    net.add_cell("DFF", {"D": "d", "CK": "ck"}, {"Q": "q"}, name="ff")
    with pytest.raises(BackendError, match="DFF"):
        BatchBackend(net, umc)


def test_batch_backend_broadcasts_scalars_and_checks_batch_sizes(umc):
    from repro.circuits import Netlist

    net = Netlist("and")
    net.add_input("a")
    net.add_input("b")
    net.add_cell("AND2", {"A": "a", "B": "b"}, {"Y": "y"}, name="g")
    net.add_output("y")
    backend = BatchBackend(net, umc)
    result = backend.run_arrays({"a": np.array([0, 1, 1, 0]), "b": 1})
    assert list(result.values["y"]) == [0, 1, 1, 0]
    with pytest.raises(BackendError, match="inconsistent batch"):
        backend.run_arrays({"a": np.array([0, 1]), "b": np.array([1, 0, 1])})


def test_batch_unassigned_inputs_propagate_unknown(umc):
    """An undriven primary input behaves like the event simulator's X."""
    from repro.circuits import Netlist

    net = Netlist("x")
    net.add_input("a")
    net.add_input("b")
    net.add_cell("AND2", {"A": "a", "B": "b"}, {"Y": "y"}, name="g")
    net.add_output("y")
    backend = BatchBackend(net, umc)
    # b unassigned: 0 AND X = 0 (controlling value), 1 AND X = X.
    result = backend.run_arrays({"a": np.array([0, 1])})
    assert result.value_of("y", 0) == 0
    assert result.value_of("y", 1) is None
