"""Edge-case and contract tests for the bit-packed 64-lane backend.

The batch backend is the reference here (it is itself pinned to the event
simulator gate for gate): the bitpack backend must agree with it net for
net and transition for transition at every awkward sample count — below,
at, and just past the 64-lane word boundary — including the masked ragged
tail, all-spacer inputs, X propagation, and ``jobs=1`` vs ``jobs=N``
bit-identity through :func:`repro.analysis.runner.run_parallel`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import random_workload, run_parallel, workload_input_planes
from repro.analysis.measure import spacer_assignments
from repro.datapath.datapath import DualRailDatapath
from repro.sim.backends import BackendError, BatchBackend, BitpackBackend
from repro.sim.backends.bitpack import pack_bits, popcount, unpack_bits, words_for


def _workload_setup(num_operands, seed=17, num_features=3, clauses_per_polarity=4):
    workload = random_workload(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        num_operands=num_operands,
        seed=seed,
    )
    datapath = DualRailDatapath(workload.config)
    planes = workload_input_planes(datapath.circuit, datapath, workload)
    return workload, datapath, planes


# ----------------------------------------------------------------- packing


@pytest.mark.parametrize("samples", [0, 1, 63, 64, 65, 130, 1000])
def test_pack_unpack_roundtrip(samples):
    rng = np.random.default_rng(samples)
    bits = (rng.random(samples) < 0.5).astype(np.uint8)
    words = pack_bits(bits, samples)
    assert words.dtype == np.uint64
    assert len(words) == words_for(samples)
    assert np.array_equal(unpack_bits(words, samples), bits)
    assert popcount(words) == int(bits.sum())


def test_pack_tail_lanes_stay_clear():
    """Lanes past the sample count never acquire bits (the masked tail)."""
    bits = np.ones(65, dtype=np.uint8)
    words = pack_bits(bits, 65)
    assert popcount(words) == 65  # not 128: tail lanes of word 1 are clear
    full = np.unpackbits(words.view(np.uint8), bitorder="little")
    assert not full[65:].any()


# ------------------------------------------------- gate-for-gate vs batch


@pytest.mark.parametrize("samples", [1, 63, 64, 65, 1000])
def test_matches_batch_gate_for_gate_at_word_boundaries(umc, samples):
    """Every net plane and every activity count agrees with the batch backend."""
    workload, datapath, planes = _workload_setup(samples)
    spacer = spacer_assignments(datapath.circuit)
    netlist = datapath.circuit.netlist
    batch = BatchBackend(netlist, umc).run_arrays(planes, baseline=spacer)
    packed = BitpackBackend(netlist, umc).run_arrays(planes, baseline=spacer)
    assert packed.samples == batch.samples == samples
    for net in netlist.nets:
        assert np.array_equal(packed.values[net], batch.values[net]), net
    assert packed.activity_by_cell == batch.activity_by_cell
    assert packed.activity_by_cell_type == batch.activity_by_cell_type


def test_masked_tail_does_not_leak_into_activity(umc):
    """65 samples count exactly 65 lanes of activity, not 128.

    The toggle count of a stream must be invariant to how much word padding
    the final word carries: evaluating the same 65 operands as one ragged
    batch or as 65 single-sample batches gives identical totals.
    """
    workload, datapath, planes = _workload_setup(65, seed=29)
    spacer = spacer_assignments(datapath.circuit)
    backend = BitpackBackend(datapath.circuit.netlist, umc)
    whole = backend.run_arrays(planes, baseline=spacer)
    summed: dict = {}
    for k in range(65):
        single = backend.run_arrays(
            {net: plane[k: k + 1] for net, plane in planes.items()}, baseline=spacer
        )
        for cell, transitions in single.activity_by_cell.items():
            summed[cell] = summed.get(cell, 0) + transitions
    assert whole.activity_by_cell == summed


def test_all_spacer_inputs_settle_to_spacer_with_zero_activity(umc):
    """The all-spacer word settles every output to spacer and toggles nothing."""
    workload, datapath, _ = _workload_setup(4, seed=31)
    circuit = datapath.circuit
    spacer = spacer_assignments(circuit)
    backend = BitpackBackend(circuit.netlist, umc)
    result = backend.run_arrays(spacer, baseline=spacer)
    assert result.activity_by_cell == {}
    assert result.activity_by_cell_type == {}
    for sig in circuit.one_of_n_outputs:
        for rail in sig.rails:
            assert result.value_of(rail, 0) == sig.polarity.spacer_rail_value


def test_unassigned_inputs_propagate_unknown(umc):
    """An undriven primary input behaves like the event simulator's X."""
    from repro.circuits import Netlist

    net = Netlist("x")
    net.add_input("a")
    net.add_input("b")
    net.add_cell("AND2", {"A": "a", "B": "b"}, {"Y": "y"}, name="g")
    net.add_output("y")
    backend = BitpackBackend(net, None)
    result = backend.run_arrays({"a": np.array([0, 1])})
    assert result.value_of("y", 0) == 0  # 0 AND X = 0 (controlling value)
    assert result.value_of("y", 1) is None  # 1 AND X = X
    assert list(result.values["y"]) == [0, 2]


def test_rejects_clocked_and_cyclic_netlists(umc):
    from repro.circuits import Netlist

    clocked = Netlist("clocked")
    clocked.add_input("d")
    clocked.add_input("ck")
    clocked.add_cell("DFF", {"D": "d", "CK": "ck"}, {"Q": "q"}, name="ff")
    with pytest.raises(BackendError, match="DFF"):
        BitpackBackend(clocked, umc)

    loop = Netlist("loop")
    loop.add_input("a")
    loop.add_cell("OR2", {"A": "a", "B": "fb"}, {"Y": "n1"}, name="g0")
    loop.add_cell("INV", {"A": "n1"}, {"Y": "fb"}, name="g1")
    with pytest.raises(BackendError, match="levelizable"):
        BitpackBackend(loop, umc)


def test_scalar_broadcast_and_input_validation(umc):
    from repro.circuits import Netlist

    net = Netlist("and")
    net.add_input("a")
    net.add_input("b")
    net.add_cell("AND2", {"A": "a", "B": "b"}, {"Y": "y"}, name="g")
    net.add_output("y")
    backend = BitpackBackend(net, umc)
    result = backend.run_arrays({"a": np.array([0, 1, 1, 0]), "b": 1})
    assert list(result.values["y"]) == [0, 1, 1, 0]
    with pytest.raises(BackendError, match="inconsistent batch"):
        backend.run_arrays({"a": np.array([0, 1]), "b": np.array([1, 0, 1])})
    with pytest.raises(BackendError, match="non-Boolean"):
        backend.run_arrays({"a": np.array([0, 2])})


def test_run_batch_protocol_interface(umc):
    """run_batch boxes per-sample outputs/net_values like the batch backend."""
    from repro.core.dual_rail import encode_bit

    workload, datapath, _ = _workload_setup(5, seed=41)
    circuit = datapath.circuit
    batch = []
    for features in workload.feature_vectors:
        operand = datapath.operand_assignments(features, workload.exclude)
        assignments = {}
        for sig in circuit.inputs:
            pos, neg = encode_bit(operand[sig.name])
            assignments[sig.pos] = pos
            assignments[sig.neg] = neg
        batch.append(assignments)
    reference = BatchBackend(circuit.netlist, umc).run_batch(
        batch, baseline=spacer_assignments(circuit)
    )
    result = BitpackBackend(circuit.netlist, umc).run_batch(
        batch, baseline=spacer_assignments(circuit)
    )
    assert result.samples == 5
    assert result.outputs == reference.outputs
    assert result.net_values == reference.net_values
    assert result.activity_by_cell == reference.activity_by_cell
    assert result.transitions == reference.transitions


# ----------------------------------------------------- parallel determinism


def _chunk_worker(item):
    """Evaluate one feature chunk through the bitpack backend (pool-safe)."""
    num_features, clauses_per_polarity, seed, chunk, exclude = item
    workload = random_workload(
        num_features=num_features,
        clauses_per_polarity=clauses_per_polarity,
        num_operands=1,
        seed=seed,
    )
    datapath = DualRailDatapath(workload.config)
    import dataclasses

    sub = dataclasses.replace(workload, feature_vectors=chunk, exclude=exclude)
    planes = workload_input_planes(datapath.circuit, datapath, sub)
    backend = BitpackBackend(datapath.circuit.netlist, None)
    result = backend.run_arrays(planes, baseline=spacer_assignments(datapath.circuit))
    verdict = datapath.circuit.one_of_n_outputs[0]
    rails = sorted(verdict.rails)
    return (
        {rail: result.values[rail].tolist() for rail in rails},
        dict(sorted(result.activity_by_cell_type.items())),
    )


@pytest.mark.parametrize("jobs", [1, 3])
def test_jobs_invariance_through_run_parallel(jobs):
    """jobs=1 and jobs=N produce bit-identical chunk results.

    (Compared against a fixed serial reference, so the two parametrized
    runs must both match it — hence each other.)
    """
    workload = random_workload(
        num_features=3, clauses_per_polarity=4, num_operands=24, seed=53
    )
    chunks = [workload.feature_vectors[k: k + 8] for k in range(0, 24, 8)]
    items = [(3, 4, 53, chunk, workload.exclude) for chunk in chunks]
    reference = [_chunk_worker(item) for item in items]
    parallel = run_parallel(_chunk_worker, items, jobs=jobs)
    assert parallel == reference
