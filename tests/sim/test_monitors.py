"""Violation-path tests for the runtime protocol monitors.

The monitors' happy paths are exercised implicitly by every event-driven
simulation; these tests pin the *detection* behaviour — what counts as a
hazard, a forbidden state, or a completion edge — by driving the monitor
callbacks directly.
"""

from __future__ import annotations

from repro.core.dual_rail import DualRailSignal, SpacerPolarity
from repro.sim.monitors import (
    ActivityCounter,
    CompletionObserver,
    ForbiddenStateMonitor,
    MonotonicityMonitor,
)


class FakeSimulator:
    """Just enough of GateLevelSimulator for ForbiddenStateMonitor."""

    def __init__(self, values):
        self.values = dict(values)

    def value(self, net):
        return self.values.get(net)


# ------------------------------------------------------- MonotonicityMonitor

def test_monotonicity_single_transition_per_phase_is_ok():
    monitor = MonotonicityMonitor()
    monitor.begin_phase("spacer->valid")
    monitor.on_net_change(1.0, "a", 0, 1, "input")
    assert monitor.ok
    assert monitor.violations == []


def test_monotonicity_flags_second_transition_in_same_phase():
    monitor = MonotonicityMonitor()
    monitor.begin_phase("spacer->valid")
    monitor.on_net_change(1.0, "a", 0, 1, "input")
    monitor.on_net_change(2.0, "a", 1, 0, "glitch")
    assert not monitor.ok
    (violation,) = monitor.violations
    assert violation.net == "a"
    assert violation.time == 2.0
    assert "non-monotonic" in violation.message


def test_monotonicity_counts_every_extra_transition():
    monitor = MonotonicityMonitor()
    monitor.begin_phase("valid->spacer")
    for time, (old, new) in enumerate([(0, 1), (1, 0), (0, 1)]):
        monitor.on_net_change(float(time), "b", old, new, "osc")
    assert len(monitor.violations) == 2  # transitions 2 and 3 both hazards


def test_monotonicity_begin_phase_resets_the_counts():
    monitor = MonotonicityMonitor()
    monitor.begin_phase("spacer->valid")
    monitor.on_net_change(1.0, "a", 0, 1, "input")
    monitor.begin_phase("valid->spacer")
    monitor.on_net_change(2.0, "a", 1, 0, "reset")
    assert monitor.ok  # one transition per phase


def test_monotonicity_power_up_assignment_is_not_a_hazard():
    monitor = MonotonicityMonitor()
    monitor.begin_phase("initial")
    monitor.on_net_change(0.0, "a", None, 0, "power-up")
    monitor.on_net_change(1.0, "a", 0, 1, "input")
    assert monitor.ok  # power-up + first real transition


def test_monotonicity_ignores_listed_nets():
    monitor = MonotonicityMonitor(ignore_nets=["clk"])
    monitor.begin_phase("spacer->valid")
    monitor.on_net_change(1.0, "clk", 0, 1, "env")
    monitor.on_net_change(2.0, "clk", 1, 0, "env")
    assert monitor.ok


# ----------------------------------------------------- ForbiddenStateMonitor

def _signal(polarity):
    return DualRailSignal(name="s", pos="s_p", neg="s_n", polarity=polarity)


def test_forbidden_state_all_zero_spacer_flags_one_one():
    signal = _signal(SpacerPolarity.ALL_ZERO)
    sim = FakeSimulator({"s_p": 1, "s_n": 1})
    monitor = ForbiddenStateMonitor(sim, [signal])
    monitor.on_net_change(3.0, "s_p", 0, 1, "gate")
    assert not monitor.ok
    (violation,) = monitor.violations
    assert "forbidden state" in violation.message
    assert "(1, 1)" in violation.message


def test_forbidden_state_all_one_spacer_flags_zero_zero():
    signal = _signal(SpacerPolarity.ALL_ONE)
    sim = FakeSimulator({"s_p": 0, "s_n": 0})
    monitor = ForbiddenStateMonitor(sim, [signal])
    monitor.on_net_change(3.0, "s_n", 1, 0, "gate")
    assert not monitor.ok
    assert "(0, 0)" in monitor.violations[0].message


def test_forbidden_state_valid_codeword_and_spacer_are_clean():
    signal = _signal(SpacerPolarity.ALL_ZERO)
    sim = FakeSimulator({"s_p": 1, "s_n": 0})
    monitor = ForbiddenStateMonitor(sim, [signal])
    monitor.on_net_change(1.0, "s_p", 0, 1, "gate")  # valid codeword
    sim.values.update({"s_p": 0, "s_n": 0})
    monitor.on_net_change(2.0, "s_p", 1, 0, "gate")  # spacer for all-zero
    assert monitor.ok


def test_forbidden_state_skips_unknown_rails_and_foreign_nets():
    signal = _signal(SpacerPolarity.ALL_ZERO)
    sim = FakeSimulator({"s_p": 1})  # s_n still unknown (powering up)
    monitor = ForbiddenStateMonitor(sim, [signal])
    monitor.on_net_change(0.5, "s_p", None, 1, "power-up")
    monitor.on_net_change(0.6, "other", 0, 1, "unrelated")
    assert monitor.ok


# -------------------------------------------------------- CompletionObserver

def test_completion_observer_records_rise_and_fall_ordering():
    observer = CompletionObserver("done")
    observer.on_net_change(10.0, "done", 0, 1, "cd")
    observer.on_net_change(20.0, "done", 1, 0, "cd")
    observer.on_net_change(30.0, "done", 0, 1, "cd")
    assert observer.rise_times == [10.0, 30.0]
    assert observer.fall_times == [20.0]
    assert observer.last_rise_after(0.0) == 10.0
    assert observer.last_rise_after(15.0) == 30.0
    assert observer.last_fall_after(10.0) == 20.0
    assert observer.last_fall_after(25.0) is None


def test_completion_observer_power_up_rise_counts_other_nets_do_not():
    observer = CompletionObserver("done")
    observer.on_net_change(1.0, "done", None, 1, "power-up")
    observer.on_net_change(2.0, "not_done", 1, 0, "other")
    assert observer.rise_times == [1.0]
    assert observer.fall_times == []


# ------------------------------------------------------------ ActivityCounter

def test_activity_counter_skips_power_up_and_totals():
    counter = ActivityCounter()
    counter.on_net_change(0.0, "a", None, 0, "power-up")
    counter.on_net_change(1.0, "a", 0, 1, "gate")
    counter.on_net_change(2.0, "b", 0, 1, "gate")
    counter.on_net_change(3.0, "a", 1, 0, "gate")
    assert counter.counts == {"a": 2, "b": 1}
    assert counter.total() == 3
