"""Unit tests for static timing analysis, power accounting and voltage sweeps."""


import pytest

from repro.circuits import LogicBuilder
from repro.sim import (
    FIGURE3_VOLTAGES,
    GateLevelSimulator,
    PowerAccountant,
    delay_scaling_curve,
    exponential_region_slope,
    latency_ratio,
    register_to_register_period,
    static_timing_analysis,
    sweep_supply_voltages,
)
from repro.sim.voltage import VoltagePoint


def _inverter_chain(length: int) -> LogicBuilder:
    builder = LogicBuilder(f"chain{length}")
    net = builder.input("a")
    for _ in range(length):
        net = builder.not_(net)
    builder.output("y", net)
    return builder


def test_sta_arrival_grows_with_depth(umc):
    short = static_timing_analysis(_inverter_chain(2).netlist, umc)
    long = static_timing_analysis(_inverter_chain(8).netlist, umc)
    assert long.max_over_outputs > short.max_over_outputs


def test_sta_critical_path_traces_back_to_input(umc):
    report = static_timing_analysis(_inverter_chain(4).netlist, umc)
    assert report.critical_path[0] == "a"
    assert len(report.critical_path) >= 5


def test_sta_matches_simulator_for_a_chain(umc):
    builder = _inverter_chain(6)
    report = static_timing_analysis(builder.netlist, umc)
    sim = GateLevelSimulator(builder.netlist, umc)
    sim.set_input("a", 1)
    settle_time = sim.settle()
    assert settle_time == pytest.approx(report.max_over_outputs, rel=1e-6)


def test_sta_internal_vs_output_arrival(umc):
    # A side branch deeper than the output path makes t_int exceed t_io.
    builder = LogicBuilder("branchy")
    a = builder.input("a")
    builder.output("y", builder.not_(a))
    deep = a
    for _ in range(6):
        deep = builder.not_(deep)
    # The deep branch drives an internal net only (no primary output).
    builder.and_(deep, a)
    report = static_timing_analysis(builder.netlist, umc)
    assert report.max_over_internal > report.max_over_outputs


def test_register_to_register_period_exceeds_combinational_path(umc):
    builder = LogicBuilder("pipeline")
    d, clk = builder.input("d"), builder.input("clk")
    q = builder.dff(d, clk)
    logic = builder.not_(builder.not_(q))
    builder.output("out", builder.dff(logic, clk))
    period = register_to_register_period(builder.netlist, umc)
    comb = static_timing_analysis(builder.netlist, umc, break_at_sequential=True)
    assert period > comb.critical_delay


def test_power_accountant_counts_switching_energy(umc):
    builder = _inverter_chain(4)
    sim = GateLevelSimulator(builder.netlist, umc)
    accountant = PowerAccountant(builder.netlist, umc)
    sim.set_input("a", 1)
    sim.settle()
    start, end = 0.0, sim.time
    breakdown = accountant.energy_of_window(sim, start, end)
    assert breakdown.transitions == 5  # four inverters plus the output buffer
    assert breakdown.total_fj > 0


def test_power_report_scales_with_activity(umc):
    builder = _inverter_chain(4)
    sim = GateLevelSimulator(builder.netlist, umc)
    accountant = PowerAccountant(builder.netlist, umc)
    value = 1
    for _ in range(6):
        sim.set_input("a", value)
        sim.settle()
        value = 1 - value
    report = accountant.report(sim, 0.0, sim.time, operations=6)
    assert report.dynamic_uw > 0
    assert report.leakage_nw == pytest.approx(accountant.leakage_nw())
    assert report.energy_per_operation_fj > 0


def test_power_report_rejects_empty_window(umc):
    builder = _inverter_chain(2)
    sim = GateLevelSimulator(builder.netlist, umc)
    accountant = PowerAccountant(builder.netlist, umc)
    with pytest.raises(ValueError):
        accountant.report(sim, 10.0, 10.0, operations=1)


def test_delay_scaling_curve_has_figure3_grid(full_diffusion):
    points = delay_scaling_curve(full_diffusion.voltage_model)
    assert len(points) == len(FIGURE3_VOLTAGES)
    assert all(p.functional for p in points)


def test_sweep_skips_non_functional_voltages(umc):
    points = sweep_supply_voltages(lambda v: 1.0 / v, umc)
    below = [p for p in points if p.vdd < umc.voltage_model.min_functional_vdd]
    assert below and all(not p.functional for p in below)


def test_exponential_region_slope_detects_growth(full_diffusion):
    model = full_diffusion.voltage_model
    points = [VoltagePoint(vdd=v, value=model.delay_factor(v)) for v in FIGURE3_VOLTAGES]
    slope = exponential_region_slope(points, v_max=0.6)
    assert slope < -5.0  # strongly negative: delay explodes as voltage drops


def test_latency_ratio_lookup():
    points = [VoltagePoint(vdd=0.25, value=100.0), VoltagePoint(vdd=1.2, value=10.0)]
    assert latency_ratio(points, 0.25, 1.2) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        latency_ratio(points, 0.3, 1.2)
