"""Contract tests for the compiled-IR artifact (:mod:`repro.sim.program`).

The load-bearing properties: ``compile_program`` is the one compile entry
point every vectorized backend executes; the artifact is backend-neutral,
serializes exactly (JSON and pickle), and a backend built from a program is
bit-identical to one built from the netlist it came from.  The legacy
``compile_levelized_ops`` entry point survives as a deprecation shim that
routes through the same compiler.
"""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest

from repro.analysis import random_workload
from repro.circuits.library import library_fingerprint
from repro.datapath.datapath import DualRailDatapath
from repro.sim.backends import BackendError, get_backend
from repro.sim.backends.base import bind_cell_ops, compile_levelized_ops
from repro.sim.backends.batch import _compile_cell_type as _batch_compile
from repro.sim.program import (
    PROGRAM_COMPILER_VERSION,
    CompiledProgram,
    NetTable,
    compile_program,
    netlist_fingerprint,
    resolve_vdd,
)


@pytest.fixture(scope="module")
def workload():
    return random_workload(
        num_features=3, clauses_per_polarity=4, num_operands=6, seed=23
    )


@pytest.fixture(scope="module")
def datapath(workload):
    return DualRailDatapath(workload.config)


def _planes(datapath, workload):
    """Per-rail uint8 input planes for the whole operand stream."""
    circuit = datapath.circuit
    per_operand = [
        datapath.operand_assignments(features, workload.exclude)
        for features in workload.feature_vectors
    ]
    planes = {}
    for sig in circuit.inputs:
        bits = np.asarray([int(op[sig.name]) for op in per_operand], dtype=np.uint8)
        planes[sig.pos] = bits
        planes[sig.neg] = (1 - bits).astype(np.uint8)
    return planes


def _spacer(circuit):
    spacer = {}
    for sig in circuit.inputs:
        value = sig.polarity.spacer_rail_value
        spacer[sig.pos] = value
        spacer[sig.neg] = value
    return spacer


def test_compile_program_structure(datapath, umc):
    netlist = datapath.circuit.netlist
    program = compile_program(netlist, umc)
    assert program.compiler_version == PROGRAM_COMPILER_VERSION
    assert program.netlist_hash == netlist_fingerprint(netlist)
    assert program.library_name == umc.name
    assert program.library_digest == library_fingerprint(umc)
    assert program.vdd == umc.voltage_model.nominal_vdd
    assert program.characterized
    assert program.num_levels > 0
    assert len(program.ops) > 0
    assert program.primary_inputs == tuple(netlist.primary_inputs)
    assert program.primary_outputs == tuple(netlist.primary_outputs)
    assert tuple(program.nets) == tuple(netlist.nets)
    # every op resolved its load/delay through the shared STA model
    assert all(op.delay_ps > 0.0 for op in program.ops)
    assert all(op.load_ff >= 0.0 for op in program.ops)
    # level order: an op's inputs are PIs, constants or earlier outputs
    produced = {net for net, _ in program.constants}
    produced.update(program.primary_inputs)
    for op in program.ops:
        assert set(op.in_nets) <= produced
        produced.add(op.out_net)


def test_compile_without_library_is_uncharacterized(datapath):
    program = compile_program(datapath.circuit.netlist)
    assert not program.characterized
    assert program.library_name is None
    assert program.library_digest is None
    assert program.vdd is None
    assert all(op.delay_ps == 0.0 for op in program.ops)
    assert all(op.energy_fj == 0.0 for op in program.ops)


def test_resolve_vdd_defaults(umc):
    assert resolve_vdd(None, None) is None
    assert resolve_vdd(umc, None) == umc.voltage_model.nominal_vdd
    assert resolve_vdd(umc, 0.7) == 0.7
    assert resolve_vdd(None, 0.9) == 0.9


def test_json_round_trip_is_exact(datapath, umc):
    program = compile_program(datapath.circuit.netlist, umc)
    clone = CompiledProgram.from_dict(program.to_dict())
    assert clone == program
    assert clone.program_hash == program.program_hash
    # floats survive the text form bit for bit
    assert [op.delay_ps for op in clone.ops] == [op.delay_ps for op in program.ops]
    assert [op.energy_fj for op in clone.ops] == [op.energy_fj for op in program.ops]


def test_pickle_round_trip(datapath, umc):
    program = compile_program(datapath.circuit.netlist, umc)
    clone = pickle.loads(pickle.dumps(program))
    assert clone == program
    assert isinstance(clone.net_names, NetTable)
    assert clone.nets[0] in clone.nets  # O(1) membership survives pickling


def test_netlist_fingerprint_is_stable_and_sensitive(workload, datapath):
    again = DualRailDatapath(workload.config)
    assert netlist_fingerprint(again.circuit.netlist) == netlist_fingerprint(
        datapath.circuit.netlist
    )
    other = random_workload(
        num_features=2, clauses_per_polarity=2, num_operands=2, seed=7
    )
    other_netlist = DualRailDatapath(other.config).circuit.netlist
    assert netlist_fingerprint(other_netlist) != netlist_fingerprint(
        datapath.circuit.netlist
    )


def test_get_backend_takes_exactly_one_of_netlist_and_program(datapath, umc):
    netlist = datapath.circuit.netlist
    program = compile_program(netlist, umc)
    with pytest.raises(BackendError, match="exactly one"):
        get_backend("batch")
    with pytest.raises(BackendError, match="exactly one"):
        get_backend("batch", netlist, umc, program=program)
    with pytest.raises(BackendError, match="event backend"):
        get_backend("event", program=program)


@pytest.mark.parametrize("name", ["batch", "bitpack"])
def test_program_built_backend_bit_identical(datapath, workload, umc, name):
    netlist = datapath.circuit.netlist
    program = compile_program(netlist, umc)
    seeded = get_backend(name, netlist, umc)
    from_program = get_backend(name, program=program)
    planes = _planes(datapath, workload)
    baseline = _spacer(datapath.circuit)
    a = seeded.run_arrays(planes, baseline=baseline)
    b = from_program.run_arrays(planes, baseline=baseline)
    for net in netlist.nets:
        assert np.array_equal(np.asarray(a.values[net]), np.asarray(b.values[net]))
    assert a.activity_by_cell == b.activity_by_cell


@pytest.mark.parametrize("name", ["batch", "bitpack"])
def test_program_built_timed_engine_bit_identical(datapath, workload, umc, name):
    netlist = datapath.circuit.netlist
    program = compile_program(netlist, umc)
    seeded = get_backend(name, netlist, umc)
    from_program = get_backend(name, program=program)
    planes = _planes(datapath, workload)
    spacer = _spacer(datapath.circuit)
    a = seeded.run_timed(planes, spacer)
    b = from_program.run_timed(planes, spacer)
    rails = datapath.circuit.all_output_rails()
    assert list(a.max_arrival(rails, "valid")) == list(b.max_arrival(rails, "valid"))
    assert list(a.energy_per_sample_fj) == list(b.energy_per_sample_fj)


def test_compile_levelized_ops_is_a_deprecated_shim(datapath, umc):
    netlist = datapath.circuit.netlist
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        constants, ops = compile_levelized_ops(netlist, _batch_compile, "batch")
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1, "the shim must warn exactly once per call"
    message = str(deprecations[0].message)
    # The warning must name the replacement APIs, not just say "deprecated".
    assert "compile_program" in message
    assert "bind_cell_ops" in message
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the modern path must not warn
        program = compile_program(netlist)
    bound = bind_cell_ops(program, _batch_compile)
    assert constants == list(program.constants)
    assert [(op.cell_name, op.cell_type, op.in_nets, op.out_net) for op in ops] == [
        (op.cell_name, op.cell_type, op.in_nets, op.out_net) for op in bound
    ]


def test_compile_program_emits_the_compile_span(datapath, umc):
    from repro.obs import trace

    with trace.capture() as captured:
        compile_program(datapath.circuit.netlist, umc)
    by_name = {r.name: r for r in captured.records}
    assert "backend.compile" in by_name
    span = by_name["backend.compile"]
    assert span.attrs["backend"] == "program"
    assert span.attrs["cells"] > 0
    assert span.attrs["characterized"] is True
