"""On-disk program cache tests: keys, invalidation, self-healing, metrics.

The cache contract: an entry is served again only while *all four* key
ingredients (netlist hash, library fingerprint, resolved supply, compiler
version) are unchanged; anything malformed on disk heals itself into a
miss; and a cache-served program is bit-identical to a fresh compile.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import random_workload
from repro.datapath.datapath import DualRailDatapath
from repro.obs import metrics as _metrics
from repro.obs import trace
from repro.sim.backends import get_backend
from repro.sim.program import PROGRAM_COMPILER_VERSION, compile_program
from repro.sim.program_cache import ProgramCache, program_cache_key


@pytest.fixture(scope="module")
def workload():
    return random_workload(
        num_features=3, clauses_per_polarity=4, num_operands=5, seed=31
    )


@pytest.fixture(scope="module")
def datapath(workload):
    return DualRailDatapath(workload.config)


def test_miss_compiles_then_hit_loads(tmp_path, datapath, umc):
    cache = ProgramCache(tmp_path)
    netlist = datapath.circuit.netlist
    first = cache.load_or_compile(netlist, umc)
    assert (cache.misses, cache.hits) == (1, 0)
    assert len(cache) == 1
    second = cache.load_or_compile(netlist, umc)
    assert (cache.misses, cache.hits) == (1, 1)
    assert second == first
    assert second.program_hash == first.program_hash
    assert cache.stats()["entries"] == 1


def test_key_moves_with_every_ingredient(datapath, umc, full_diffusion):
    cache = ProgramCache("unused")
    netlist = datapath.circuit.netlist
    base = cache.key_for(netlist=netlist, library=umc)
    assert cache.key_for(netlist=netlist, library=umc) == base
    # library fingerprint ingredient
    assert cache.key_for(netlist=netlist, library=full_diffusion) != base
    # supply ingredient (explicit nominal == defaulted nominal, others move)
    nominal = umc.voltage_model.nominal_vdd
    assert cache.key_for(netlist=netlist, library=umc, vdd=nominal) == base
    assert cache.key_for(netlist=netlist, library=umc, vdd=nominal * 0.5) != base
    # compiler version ingredient
    program = compile_program(netlist, umc)
    current = program_cache_key(
        program.netlist_hash, program.library_digest, program.vdd
    )
    bumped = program_cache_key(
        program.netlist_hash, program.library_digest, program.vdd,
        compiler_version=PROGRAM_COMPILER_VERSION + 1,
    )
    assert current == base
    assert bumped != base


def test_stale_entries_are_not_served_across_vdd(tmp_path, datapath, umc):
    cache = ProgramCache(tmp_path)
    netlist = datapath.circuit.netlist
    nominal = umc.voltage_model.nominal_vdd
    at_nominal = cache.load_or_compile(netlist, umc)
    low = cache.load_or_compile(netlist, umc, vdd=nominal * 0.9)
    assert cache.misses == 2  # different supply -> different entry
    assert len(cache) == 2
    assert at_nominal.vdd != low.vdd
    assert [op.delay_ps for op in at_nominal.ops] != [op.delay_ps for op in low.ops]


def test_corrupt_entry_self_heals(tmp_path, datapath, umc):
    cache = ProgramCache(tmp_path)
    netlist = datapath.circuit.netlist
    cache.load_or_compile(netlist, umc)
    key = cache.key_for(netlist=netlist, library=umc)
    path = tmp_path / f"{key}.json"
    path.write_text("{ this is not json")
    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert not path.exists()  # deleted, not left to fail every later load
    recovered = cache.load_or_compile(netlist, umc)
    assert recovered == compile_program(netlist, umc)
    assert path.exists()


def test_key_mismatch_counts_as_corrupt(tmp_path, datapath, umc):
    cache = ProgramCache(tmp_path)
    netlist = datapath.circuit.netlist
    program = cache.load_or_compile(netlist, umc)
    key = cache.key_for(netlist=netlist, library=umc)
    path = tmp_path / f"{key}.json"
    record = json.loads(path.read_text())
    record["key"] = "0" * 64  # a tampered / misfiled entry
    path.write_text(json.dumps(record))
    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert program == cache.load_or_compile(netlist, umc)


def test_counters_and_prometheus_rendering(tmp_path, datapath, umc):
    registry = _metrics.default_registry()
    hits0 = registry.counter("program_cache_hits").value()
    misses0 = registry.counter("program_cache_misses").value()
    cache = ProgramCache(tmp_path)
    netlist = datapath.circuit.netlist
    cache.load_or_compile(netlist, umc)
    cache.load_or_compile(netlist, umc)
    assert registry.counter("program_cache_hits").value() == hits0 + 1
    assert registry.counter("program_cache_misses").value() == misses0 + 1
    rendered = registry.render_prometheus()
    assert "# TYPE program_cache_hits counter" in rendered
    assert "# TYPE program_cache_misses counter" in rendered


def test_cache_load_and_store_spans(tmp_path, datapath, umc):
    cache = ProgramCache(tmp_path)
    netlist = datapath.circuit.netlist
    with trace.capture() as cold:
        cache.load_or_compile(netlist, umc)
    cold_names = [r.name for r in cold.records]
    assert "program.cache.load" in cold_names
    assert "program.cache.store" in cold_names
    assert "backend.compile" in cold_names
    with trace.capture() as warm:
        cache.load_or_compile(netlist, umc)
    warm_names = [r.name for r in warm.records]
    assert "program.cache.load" in warm_names
    assert "backend.compile" not in warm_names  # the whole point of the cache
    load = next(r for r in warm.records if r.name == "program.cache.load")
    assert load.attrs["hit"] is True


@pytest.mark.parametrize("name", ["batch", "bitpack"])
def test_cache_served_backend_bit_identical(tmp_path, workload, datapath, umc, name):
    netlist = datapath.circuit.netlist
    seeded = get_backend(name, netlist, umc)
    cached = get_backend(name, netlist, umc, cache=str(tmp_path))  # cold: store
    warmed = get_backend(name, netlist, umc, cache=str(tmp_path))  # warm: load
    per_operand = [
        datapath.operand_assignments(features, workload.exclude)
        for features in workload.feature_vectors
    ]
    planes = {}
    for sig in datapath.circuit.inputs:
        bits = np.asarray([int(op[sig.name]) for op in per_operand], dtype=np.uint8)
        planes[sig.pos] = bits
        planes[sig.neg] = (1 - bits).astype(np.uint8)
    spacer = {}
    for sig in datapath.circuit.inputs:
        spacer[sig.pos] = sig.polarity.spacer_rail_value
        spacer[sig.neg] = sig.polarity.spacer_rail_value
    reference = seeded.run_timed(planes, spacer)
    for engine in (cached, warmed):
        assert engine.program == seeded.program
        timed = engine.run_timed(planes, spacer)
        rails = datapath.circuit.all_output_rails()
        assert list(timed.max_arrival(rails, "valid")) == list(
            reference.max_arrival(rails, "valid")
        )
        assert list(timed.energy_per_sample_fj) == list(
            reference.energy_per_sample_fj
        )


def _race_load_or_compile(cache_dir, netlist, library, barrier, out_path):
    """Child-process body for the concurrent-writers test (fork context)."""
    cache = ProgramCache(cache_dir)
    barrier.wait(timeout=30)
    program = cache.load_or_compile(netlist, library)
    out_path.write_text(program.program_hash + "\n")


def test_concurrent_writers_both_succeed_no_corrupt_entry(tmp_path, datapath, umc):
    """Two processes racing ``load_or_compile`` on the same key both succeed.

    The atomic same-directory-rename write in :meth:`ProgramCache.put`
    means the race resolves to last-writer-wins on identical content: both
    children return the same program hash, and the surviving on-disk entry
    is complete and served as a clean hit afterwards.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    cache_dir = tmp_path / "cache"
    netlist = datapath.circuit.netlist
    outs = [tmp_path / f"hash-{i}.txt" for i in range(2)]
    children = [
        ctx.Process(
            target=_race_load_or_compile,
            args=(cache_dir, netlist, umc, barrier, out),
        )
        for out in outs
    ]
    for child in children:
        child.start()
    for child in children:
        child.join(timeout=60)
    assert all(child.exitcode == 0 for child in children), (
        f"racing writers failed: exit codes {[c.exitcode for c in children]}"
    )
    hashes = {out.read_text().strip() for out in outs}
    assert len(hashes) == 1, f"racing writers disagreed: {hashes}"
    # The surviving entry is complete: a fresh reader gets a clean hit
    # identical to an independent compile, with no corruption recorded.
    cache = ProgramCache(cache_dir)
    served = cache.load_or_compile(netlist, umc)
    assert (cache.hits, cache.corrupt) == (1, 0)
    assert served.program_hash == hashes.pop()
    assert served == compile_program(netlist, umc)
