"""Micro-tests for the simulator's per-(cell, net) delay/load caches."""

from __future__ import annotations

from repro.circuits import Netlist, umc_ll_library
from repro.sim import GateLevelSimulator


def _inverter_netlist() -> Netlist:
    net = Netlist("inv")
    net.add_input("a")
    net.add_cell("INV", {"A": "a"}, {"Y": "y"}, name="inv0")
    net.add_output("y")
    return net


def test_cell_delay_cache_hit_on_repeated_switching():
    """The fanout load is computed once per (cell, net), not per event."""
    library = umc_ll_library()
    sim = GateLevelSimulator(_inverter_netlist(), library)
    load_calls = []
    original = sim.output_load

    def counting_output_load(cell, net):
        load_calls.append((cell.name, net))
        return original(cell, net)

    sim.output_load = counting_output_load
    for value in (0, 1, 0, 1, 0, 1):
        sim.set_input("a", value)
        sim.settle()
    assert sim.value("y") == 0
    # Six input edges drove six output events, but the load (and the delay
    # derived from it) was computed exactly once.
    assert load_calls == [("inv0", "y")]
    assert ("inv0", "y") in sim._delay_cache


def test_cell_delay_cache_uses_tuple_keys():
    """Tuple keys cannot collide the way 'name:net' f-string keys could."""
    library = umc_ll_library()
    net = Netlist("two")
    net.add_input("a")
    net.add_cell("INV", {"A": "a"}, {"Y": "x:y"}, name="g")
    net.add_cell("INV", {"A": "x:y"}, {"Y": "z"}, name="g:x")
    net.add_output("z")
    sim = GateLevelSimulator(net, library)
    sim.set_input("a", 1)
    sim.settle()
    assert set(sim._delay_cache) == {("g", "x:y"), ("g:x", "z")}
