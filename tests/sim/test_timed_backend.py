"""Equivalence suite for the vectorized data-dependent timing engine.

The contract (documented in docs/guides/timing-and-energy-model.md):

* per-sample spacer→valid latency, reset time and internal-reset time match
  the event-driven handshake environment within float re-association
  accuracy (the engines perform the same pairwise delay additions, but the
  event simulator accumulates absolute timestamps before subtracting the
  phase origin), on **both** libraries and at **multiple** supply points;
* per-sample switching energy and activity counts are bit-identical to the
  batch backend's spacer-baseline accounting and match the event
  simulator's transition log (dual-rail settling is glitch-free);
* the bitpack entry point is bit-identical to the batch entry point for
  every sample count, 64-aligned or ragged;
* no per-sample latency ever exceeds the STA critical delay (false paths
  included) — STA and the timed engine share one delay model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.measure import (
    build_mapped_dual_rail,
    default_workload,
    make_dual_rail_environment,
    random_workload,
    spacer_assignments,
    truncate_workload,
    workload_input_planes,
)
from repro.sim.backends import BackendError, BatchBackend, BitpackBackend
from repro.sim.power import PowerAccountant
from repro.sim.sta import static_timing_analysis

#: The engines perform identical delay sums; the only divergence is float
#: re-association in the event simulator's absolute time base (measured at
#: ~1e-14 relative).  1e-9 is the documented equivalence tolerance.
RTOL = 1e-9


@pytest.fixture(scope="module")
def workload():
    return default_workload(num_features=4, clauses_per_polarity=8, num_operands=10)


def _event_results(mapped, workload):
    bench = make_dual_rail_environment(mapped)
    return bench, [
        bench.environment.infer(
            mapped.datapath.operand_assignments(f, workload.exclude)
        )
        for f in workload.feature_vectors
    ]


def _timed(mapped, workload, backend_cls=BatchBackend):
    backend = backend_cls(mapped.circuit.netlist, mapped.library, vdd=mapped.vdd)
    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    return backend.run_timed(planes, spacer_assignments(mapped.circuit))


@pytest.mark.parametrize("library_name", ["umc", "full_diffusion"])
@pytest.mark.parametrize("vdd", [None, 0.8])
def test_per_sample_latency_and_reset_match_event(
    library_name, vdd, workload, request
):
    """Latency/reset equivalence vs the event oracle on both libraries, 2 vdds."""
    library = request.getfixturevalue(library_name)
    mapped = build_mapped_dual_rail(workload.config, library, vdd=vdd)
    _bench, results = _event_results(mapped, workload)
    timed = _timed(mapped, workload)
    rails = mapped.circuit.all_output_rails()

    np.testing.assert_allclose(
        timed.max_arrival(rails, "valid"),
        [r.t_s_to_v for r in results], rtol=RTOL,
    )
    np.testing.assert_allclose(
        timed.max_arrival(rails, "reset"),
        [r.t_v_to_s for r in results], rtol=RTOL,
    )
    np.testing.assert_allclose(
        timed.settle_time("reset"),
        [r.t_internal_reset for r in results], rtol=RTOL,
    )
    done = mapped.circuit.done_net
    np.testing.assert_allclose(
        timed.arrival_of(done, "valid"),
        [r.done_rise - r.t_start for r in results], rtol=RTOL,
    )


def test_per_sample_energy_matches_event_window(umc, workload):
    """Timed per-cycle energy equals the event transition log, priced identically."""
    mapped = build_mapped_dual_rail(workload.config, umc)
    bench, results = _event_results(mapped, workload)
    timed = _timed(mapped, workload)
    accountant = PowerAccountant(mapped.circuit.netlist, umc)

    # Whole-window total: the event log over all operands vs the timed sum.
    window_energy = accountant.energy_of_window(
        bench.simulator, results[0].t_start, bench.simulator.time
    )
    assert timed.energy_per_sample_fj.sum() == pytest.approx(
        window_energy.total_fj, rel=RTOL
    )

    # Per-operand: each event cycle window prices to that sample's energy.
    boundaries = [r.t_start for r in results] + [bench.simulator.time]
    for k in range(len(results)):
        cycle = accountant.energy_of_window(
            bench.simulator, boundaries[k], boundaries[k + 1]
        )
        assert timed.energy_per_sample_fj[k] == pytest.approx(
            cycle.total_fj, rel=RTOL
        )


def test_activity_counts_are_bit_identical_to_batch(umc, workload):
    """Timed activity is the batch backend's spacer-baseline count, exactly."""
    mapped = build_mapped_dual_rail(workload.config, umc)
    timed = _timed(mapped, workload)
    backend = BatchBackend(mapped.circuit.netlist, umc)
    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    functional = backend.run_arrays(planes, baseline=spacer_assignments(mapped.circuit))
    assert timed.activity_by_cell == functional.activity_by_cell
    assert timed.activity_by_cell_type == functional.activity_by_cell_type


def test_timed_values_match_functional_planes(umc, workload):
    """The timed pass settles every net to the batch backend's values."""
    mapped = build_mapped_dual_rail(workload.config, umc)
    timed = _timed(mapped, workload)
    backend = BatchBackend(mapped.circuit.netlist, umc)
    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    functional = backend.run_arrays(planes)
    for net in mapped.circuit.netlist.nets:
        assert np.array_equal(timed.values[net], functional.values[net]), net


@pytest.mark.parametrize("samples", [1, 63, 64, 65, 100])
def test_bitpack_timed_is_bit_identical_to_batch(umc, samples):
    """Ragged-tail masking: bitpack timing equals batch timing at any length.

    The packed functional planes carry X tail lanes past the stream length;
    the timed pass runs on exactly ``samples`` dense lanes, so no tail lane
    can leak into arrivals or energy — pinned here across word-aligned and
    ragged sample counts.
    """
    workload = random_workload(
        num_features=4, clauses_per_polarity=4, num_operands=samples, seed=9
    )
    mapped = build_mapped_dual_rail(workload.config, umc)
    via_batch = _timed(mapped, workload, BatchBackend)
    via_bitpack = _timed(mapped, workload, BitpackBackend)
    assert via_batch.samples == via_bitpack.samples == samples
    for net in mapped.circuit.netlist.nets:
        assert np.array_equal(
            via_batch.arrival_of(net, "valid"), via_bitpack.arrival_of(net, "valid")
        )
        assert np.array_equal(
            via_batch.arrival_of(net, "reset"), via_bitpack.arrival_of(net, "reset")
        )
    assert np.array_equal(
        via_batch.energy_per_sample_fj, via_bitpack.energy_per_sample_fj
    )
    assert via_batch.activity_by_cell == via_bitpack.activity_by_cell


@pytest.mark.parametrize("library_name", ["umc", "full_diffusion"])
@pytest.mark.parametrize("vdd", [None, 0.9])
def test_no_sample_exceeds_sta_critical_delay(library_name, vdd, request):
    """Property: per-sample arrivals are bounded by topological STA.

    STA counts every structural path, false paths included, with the same
    per-instance delays; a logically sensitised (timed) arrival can reach
    but never exceed it.  Checked net-for-net for both phases, and for the
    headline latency against the STA critical delay.
    """
    library = request.getfixturevalue(library_name)
    workload = random_workload(
        num_features=4, clauses_per_polarity=8, num_operands=24, seed=13
    )
    mapped = build_mapped_dual_rail(workload.config, library, vdd=vdd)
    timed = _timed(mapped, workload)
    report = static_timing_analysis(mapped.circuit.netlist, library, vdd=vdd)
    eps = 1e-6
    for net, bound in report.arrival.items():
        assert float(timed.arrival_of(net, "valid").max()) <= bound + eps, net
        assert float(timed.arrival_of(net, "reset").max()) <= bound + eps, net
    rails = mapped.circuit.all_output_rails()
    assert float(timed.max_arrival(rails, "valid").max()) <= report.critical_delay + eps
    assert float(timed.settle_time("reset").max()) <= report.critical_delay + eps


def test_worst_case_operand_can_reach_sta_on_a_simple_gate(umc):
    """On a single AND2 the all-switching operand hits the STA arrival exactly."""
    from repro.circuits.netlist import Netlist

    netlist = Netlist("and2_only")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_cell("AND2", inputs={"A": "a", "B": "b"}, outputs={"Y": "y"}, name="u1")
    backend = BatchBackend(netlist, umc)
    timed = backend.run_timed({"a": [1, 1, 0], "b": [1, 0, 1]}, {"a": 0, "b": 0})
    report = static_timing_analysis(netlist, umc)
    # Sample 0 switches the output: arrival equals the STA bound exactly.
    assert timed.arrival_of("y", "valid")[0] == report.arrival["y"]
    # Samples 1-2 leave the output at its spacer value: no transition.
    assert timed.arrival_of("y", "valid")[1] == 0.0
    assert timed.arrival_of("y", "valid")[2] == 0.0


def test_early_propagation_beats_worst_case(umc):
    """An OR2's controlling input determines its arrival (early propagation)."""
    from repro.circuits.netlist import Netlist

    netlist = Netlist("or_after_chain")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    # b goes through two inverters (slow path); a hits the OR directly.
    netlist.add_cell("INV", inputs={"A": "b"}, outputs={"Y": "inv1"}, name="u1")
    netlist.add_cell("INV", inputs={"A": "inv1"}, outputs={"Y": "inv2"}, name="u2")
    netlist.add_cell("OR2", inputs={"A": "a", "B": "inv2"}, outputs={"Y": "y"}, name="u3")
    backend = BatchBackend(netlist, umc)
    timed = backend.run_timed({"a": [1, 0], "b": [1, 1]}, {"a": 0, "b": 0})
    fast = float(timed.arrival_of("y", "valid")[0])   # a=1 controls immediately
    slow = float(timed.arrival_of("y", "valid")[1])   # must wait for the chain
    assert 0.0 < fast < slow
    report = static_timing_analysis(netlist, umc)
    assert slow <= report.arrival["y"] + 1e-9


def test_timed_requires_library_and_functional_supply(umc):
    """The timed engine refuses meaningless configurations."""
    workload = random_workload(num_features=3, clauses_per_polarity=2,
                               num_operands=2, seed=3)
    mapped = build_mapped_dual_rail(workload.config, umc)
    netlist = mapped.circuit.netlist
    with pytest.raises(BackendError):
        BatchBackend(netlist, library=None).run_timed({}, {})
    with pytest.raises(BackendError):
        BatchBackend(netlist, umc, vdd=0.3).run_timed({}, {})  # below floor


def test_timed_program_is_cached_per_backend(umc):
    """Repeated run_timed calls reuse one compiled program."""
    workload = random_workload(num_features=3, clauses_per_polarity=2,
                               num_operands=4, seed=3)
    mapped = build_mapped_dual_rail(workload.config, umc)
    backend = BatchBackend(mapped.circuit.netlist, umc)
    planes = workload_input_planes(mapped.circuit, mapped.datapath, workload)
    spacer = spacer_assignments(mapped.circuit)
    backend.run_timed(planes, spacer)
    program = backend._timed_programs[()]
    backend.run_timed(planes, spacer)
    assert backend._timed_programs[()] is program


def test_delay_variation_matches_event_simulator(umc):
    """Per-instance delay variation flows through identically to the event sim."""
    workload = truncate_workload(
        default_workload(num_features=4, clauses_per_polarity=4, num_operands=4), 4
    )
    mapped = build_mapped_dual_rail(workload.config, umc)
    variation = {
        cell.name: 1.0 + 0.05 * (i % 7)
        for i, cell in enumerate(mapped.circuit.netlist.iter_cells())
    }
    from repro.core.completion import compute_grace_period
    from repro.sim.handshake import DualRailEnvironment
    from repro.sim.simulator import GateLevelSimulator

    sim = GateLevelSimulator(mapped.circuit.netlist, umc, delay_variation=variation)
    grace = compute_grace_period(mapped.circuit, umc).td
    env = DualRailEnvironment(mapped.circuit, sim, grace_period=grace)
    env.reset()
    results = [
        env.infer(mapped.datapath.operand_assignments(f, workload.exclude))
        for f in workload.feature_vectors
    ]
    backend = BatchBackend(mapped.circuit.netlist, umc)
    timed = backend.run_timed(
        workload_input_planes(mapped.circuit, mapped.datapath, workload),
        spacer_assignments(mapped.circuit),
        delay_variation=variation,
    )
    rails = mapped.circuit.all_output_rails()
    np.testing.assert_allclose(
        timed.max_arrival(rails, "valid"), [r.t_s_to_v for r in results], rtol=RTOL
    )
