"""Tests for the Tsetlin machine substrate: automata, clauses, training, inference."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tm import (
    InferenceModel,
    MultiClassTsetlinMachine,
    ThermometerBooleanizer,
    ThresholdBooleanizer,
    TsetlinAutomatonTeam,
    TsetlinMachine,
    clause_outputs,
    literals_from_features,
    majority,
    noisy_xor,
    parity,
    random_operand_stream,
    sensor_blobs,
    threshold_pattern,
    vote_counts,
    vote_sum,
)


# ---------------------------------------------------------------------------
# Automata
# ---------------------------------------------------------------------------

def test_team_initial_states_on_boundary():
    team = TsetlinAutomatonTeam(4, 6, num_states=10, rng=np.random.default_rng(0))
    assert set(np.unique(team.state)) <= {10, 11}


def test_reward_strengthens_and_penalty_weakens_actions():
    team = TsetlinAutomatonTeam(1, 2, num_states=5, rng=np.random.default_rng(0))
    team.set_actions(np.array([[True, False]]))
    include_before = team.state.copy()
    mask = np.ones_like(team.state, dtype=bool)
    team.reward(mask)
    assert team.state[0, 0] > include_before[0, 0]      # include reinforced upward
    assert team.state[0, 1] < include_before[0, 1]      # exclude reinforced downward
    for _ in range(20):
        team.penalize(mask)
    # Heavy penalties flip both actions.
    assert team.include_actions()[0, 0] == False  # noqa: E712
    assert team.include_actions()[0, 1] == True   # noqa: E712


def test_states_stay_within_bounds():
    team = TsetlinAutomatonTeam(2, 4, num_states=3, rng=np.random.default_rng(1))
    mask = np.ones_like(team.state, dtype=bool)
    for _ in range(20):
        team.reward(mask)
    assert team.state.max() <= 6 and team.state.min() >= 1
    for _ in range(40):
        team.penalize(mask)
    assert team.state.max() <= 6 and team.state.min() >= 1


def test_set_actions_shape_check():
    team = TsetlinAutomatonTeam(2, 4)
    with pytest.raises(ValueError):
        team.set_actions(np.zeros((3, 4), dtype=bool))


# ---------------------------------------------------------------------------
# Clause evaluation
# ---------------------------------------------------------------------------

def test_literals_from_features_appends_negations():
    lits = literals_from_features(np.array([1, 0, 1], dtype=np.int8))
    assert list(lits) == [1, 0, 1, 0, 1, 0]


def test_clause_outputs_and_semantics():
    include = np.array([
        [True, False, False, False],   # clause needs f0
        [False, False, True, False],   # clause needs NOT f0
        [False, False, False, False],  # empty clause
    ])
    lits = literals_from_features(np.array([1, 0], dtype=np.int8))
    outs = clause_outputs(include, lits, empty_clause_output=0)
    assert list(outs) == [1, 0, 0]
    outs_training = clause_outputs(include, lits, empty_clause_output=1)
    assert list(outs_training) == [1, 0, 1]


def test_vote_sum_and_counts_follow_polarity_convention():
    outputs = np.array([1, 0, 1, 1])  # clauses 0,2 positive; 1,3 negative
    assert vote_counts(outputs) == (2, 1)
    assert vote_sum(outputs) == 1


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=16)
       .filter(lambda x: len(x) % 2 == 0))
def test_vote_sum_equals_counts_difference(outputs):
    outputs = np.array(outputs)
    pos, neg = vote_counts(outputs)
    assert vote_sum(outputs) == pos - neg


# ---------------------------------------------------------------------------
# Training
# ---------------------------------------------------------------------------

def test_machine_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TsetlinMachine(num_features=4, num_clauses=5)
    with pytest.raises(ValueError):
        TsetlinMachine(num_features=0)
    with pytest.raises(ValueError):
        TsetlinMachine(num_features=4, s=0.5)


def test_training_learns_noisy_xor():
    dataset = noisy_xor(num_samples=300, num_features=4, noise=0.05, seed=11)
    machine = TsetlinMachine(num_features=4, num_clauses=16, threshold=8, s=3.0, seed=11)
    history = machine.fit(dataset.train_x, dataset.train_y, epochs=30)
    assert history.final_accuracy > 0.85
    assert machine.accuracy(dataset.test_x, dataset.test_y) > 0.80


def test_exclude_masks_roundtrip():
    machine = TsetlinMachine(num_features=3, num_clauses=4, seed=5)
    exclude = machine.exclude_masks()
    assert exclude.shape == (4, 6)
    other = TsetlinMachine(num_features=3, num_clauses=4, seed=99)
    other.set_exclude_masks(exclude)
    np.testing.assert_array_equal(other.exclude_masks(), exclude)


def test_multiclass_machine_trains_and_predicts():
    dataset = sensor_blobs(num_samples=200, num_raw_features=3, num_classes=3,
                           thermometer_levels=2, seed=3)
    machine = MultiClassTsetlinMachine(
        num_classes=3, num_features=dataset.num_features, num_clauses=10,
        threshold=5, seed=3,
    )
    machine.fit(dataset.train_x, dataset.train_y, epochs=15)
    assert machine.accuracy(dataset.test_x, dataset.test_y) > 0.6


# ---------------------------------------------------------------------------
# Inference model (the hardware golden reference)
# ---------------------------------------------------------------------------

def test_inference_model_matches_trained_machine_clauses():
    dataset = noisy_xor(num_samples=200, num_features=4, noise=0.05, seed=21)
    machine = TsetlinMachine(num_features=4, num_clauses=8, threshold=4, seed=21)
    machine.fit(dataset.train_x, dataset.train_y, epochs=15)
    model = InferenceModel.from_machine(machine)
    # When no clause is empty, the model's clause outputs equal the machine's.
    if model.exclude.all(axis=1).any():
        pytest.skip("trained machine produced an empty clause; conventions differ")
    for row in dataset.test_x[:20]:
        np.testing.assert_array_equal(model.clause_outputs(row),
                                      machine.clause_outputs(row))


def test_inference_model_shape_checks():
    with pytest.raises(ValueError):
        InferenceModel(np.zeros((3, 4), dtype=bool))   # odd clause count
    with pytest.raises(ValueError):
        InferenceModel(np.zeros((2, 3), dtype=bool))   # odd literal count
    model = InferenceModel.random(4, 3, seed=1)
    with pytest.raises(ValueError):
        model.decision([1, 0])                          # wrong feature count


def test_inference_model_trace_consistency():
    model = InferenceModel.random(6, 4, include_probability=0.4, seed=9)
    features = [1, 0, 1, 1]
    trace = model.trace(features)
    assert trace.positive_votes == int(trace.clause_outputs[0::2].sum())
    assert trace.negative_votes == int(trace.clause_outputs[1::2].sum())
    assert trace.decision == (1 if trace.positive_votes >= trace.negative_votes else 0)
    assert trace.comparator_verdict in ("greater", "equal", "less")


def test_vote_difference_distribution_sums_to_sample_count():
    model = InferenceModel.random(8, 4, seed=13)
    samples = random_operand_stream(4, 25, seed=13)
    hist = model.vote_difference_distribution(samples)
    assert sum(hist.values()) == 25


# ---------------------------------------------------------------------------
# Datasets and booleanisation
# ---------------------------------------------------------------------------

def test_datasets_have_consistent_shapes():
    for dataset in (noisy_xor(seed=1), parity(seed=2), majority(seed=3),
                    threshold_pattern(seed=4), sensor_blobs(seed=5)):
        assert dataset.train_x.shape[1] == dataset.test_x.shape[1]
        assert dataset.train_x.shape[0] == dataset.train_y.shape[0]
        assert set(np.unique(dataset.train_x)) <= {0, 1}
        assert dataset.num_classes >= 2
        assert dataset.summary()


def test_noisy_xor_labels_follow_xor_mostly():
    dataset = noisy_xor(num_samples=2000, noise=0.0, seed=7)
    x, y = dataset.train_x, dataset.train_y
    xor = np.logical_xor(x[:, 0], x[:, 1]).astype(np.int8)
    assert (xor == y).mean() == 1.0


def test_threshold_booleanizer_roundtrip():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(50, 3))
    encoder = ThresholdBooleanizer()
    bits = encoder.fit_transform(data)
    assert bits.shape == (50, 3)
    assert set(np.unique(bits)) <= {0, 1}
    with pytest.raises(RuntimeError):
        ThresholdBooleanizer().transform(data)


def test_thermometer_booleanizer_is_monotone_per_feature():
    rng = np.random.default_rng(1)
    data = rng.normal(size=(60, 2))
    encoder = ThermometerBooleanizer(levels=3)
    bits = encoder.fit_transform(data)
    assert bits.shape == (60, 6)
    # Thermometer property: within a feature, a set bit implies all lower
    # thresholds are also set.
    for f in range(2):
        chunk = bits[:, f * 3:(f + 1) * 3]
        assert np.all(chunk[:, 0] >= chunk[:, 1])
        assert np.all(chunk[:, 1] >= chunk[:, 2])
