"""Serving-layer integration of the compiled-IR program and its cache.

A 2-worker :class:`ProcessPoolClassifier` given a program cache must compile
the served netlist exactly once (in the parent — trace-verified via the
``backend.compile`` span) and classify bit-identically to the seed path;
a :class:`ModelSpec` can also carry a precompiled program directly, and a
program compiled from a different netlist is rejected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import random_workload
from repro.obs import trace
from repro.serve.worker import (
    InferenceWorker,
    InProcessClassifier,
    ModelSpec,
    ProcessPoolClassifier,
    precompile_program,
)


@pytest.fixture(scope="module")
def workload():
    return random_workload(
        num_features=3, clauses_per_polarity=4, num_operands=6, seed=17
    )


@pytest.fixture(scope="module")
def features(workload):
    return np.asarray(workload.feature_vectors, dtype=np.uint8)


@pytest.fixture(scope="module")
def seed_reply(workload, features):
    return InProcessClassifier(ModelSpec.from_workload(workload)).classify(features)


def test_pool_with_cache_compiles_exactly_once(tmp_path, workload, features, seed_reply):
    spec = ModelSpec.from_workload(workload, program_cache=str(tmp_path))
    with trace.capture() as captured:
        pool = ProcessPoolClassifier(spec, workers=2)
        try:
            replies = [pool.classify(features) for _ in range(3)]
        finally:
            pool.close()
    compiles = [r for r in captured.records if r.name == "backend.compile"]
    assert len(compiles) == 1  # the parent pre-warm; workers get the artifact
    # the pre-warm stored the artifact for future server processes
    assert len(list(tmp_path.glob("*.json"))) == 1
    assert pool.spec.program is not None
    for reply in replies:
        assert reply.decisions == seed_reply.decisions
        assert reply.verdicts == seed_reply.verdicts


def test_spec_with_precompiled_program(workload, features, seed_reply):
    program = precompile_program(ModelSpec.from_workload(workload))
    with trace.capture() as captured:
        worker = InferenceWorker(ModelSpec.from_workload(workload, program=program))
        reply = worker.classify(features)
    assert [r for r in captured.records if r.name == "backend.compile"] == []
    assert reply.decisions == seed_reply.decisions


def test_mismatched_program_is_rejected(workload):
    other = random_workload(
        num_features=2, clauses_per_polarity=2, num_operands=2, seed=5
    )
    foreign = precompile_program(ModelSpec.from_workload(other))
    spec = ModelSpec.from_workload(workload, program=foreign)
    with pytest.raises(ValueError, match="different netlist"):
        InferenceWorker(spec)


def test_cache_only_worker_loads_from_disk(tmp_path, workload, features, seed_reply):
    warm = precompile_program(
        ModelSpec.from_workload(workload, program_cache=str(tmp_path))
    )
    with trace.capture() as captured:
        worker = InferenceWorker(
            ModelSpec.from_workload(workload, program_cache=str(tmp_path))
        )
        reply = worker.classify(features)
    assert [r for r in captured.records if r.name == "backend.compile"] == []
    load = next(r for r in captured.records if r.name == "program.cache.load")
    assert load.attrs["hit"] is True
    assert worker.session.backend.program == warm
    assert reply.decisions == seed_reply.decisions
