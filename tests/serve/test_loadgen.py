"""End-to-end tests: load generation over a real served model.

A tiny trained-shape workload (2 features, 2 clauses/polarity) keeps the
compile cheap; the tests pin the whole serving path — gateway + worker +
loadgen — including the headline guarantee that gateway classifications
are bit-identical to a direct :func:`repro.analysis.batch_functional_pass`
over the same operands, and that ``BENCH_serve.json`` lands in the
sim/DSE baseline schema the regression gate reads.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.analysis import batch_functional_pass, random_workload, resolve_library
from repro.datapath.datapath import DualRailDatapath
from repro.serve import (
    GatewayConfig,
    LoadConfig,
    MicroBatchGateway,
    ModelSpec,
    run_load,
)


@pytest.fixture(scope="module")
def workload():
    return random_workload(
        num_features=2, clauses_per_polarity=2, num_operands=32, seed=5
    )


def _serve(workload, load, gateway_config=None, **spec_kwargs):
    """Run one load-generation pass over a freshly served *workload*."""

    async def body():
        spec = ModelSpec.from_workload(workload, **spec_kwargs)
        gateway = MicroBatchGateway(
            spec, gateway_config or GatewayConfig(max_batch=16, max_delay_ms=5.0)
        )
        await gateway.start()
        try:
            return await run_load(gateway, workload.feature_vectors, load)
        finally:
            await gateway.stop()

    return asyncio.run(body())


@pytest.mark.parametrize("backend", ["batch", "bitpack"])
def test_closed_loop_is_bit_identical_to_batch_pass(workload, backend):
    """Gateway replies == direct vectorized pass, request for request."""
    report = _serve(
        workload,
        LoadConfig(mode="closed", requests=64, concurrency=16, seed=3),
        backend=backend,
    )
    assert report.completed == 64 and report.rejected == 0

    datapath = DualRailDatapath(workload.config)
    sweep = batch_functional_pass(
        datapath,
        datapath.circuit,
        workload,
        resolve_library(None),
        with_activity=False,
        backend=backend,
    )
    n = workload.num_operands
    for verdict, decision, index in zip(
        report.verdicts, report.decisions, report.request_indices
    ):
        assert verdict == sweep.verdicts[index % n]
        assert decision == sweep.decisions[index % n]


def test_open_loop_reports_offered_rate_and_slo(workload):
    """Poisson arrivals: offered rate recorded, SLO summary is ordered."""
    report = _serve(
        workload,
        LoadConfig(mode="open", requests=40, rate_rps=4000.0, seed=9),
    )
    assert report.mode == "open"
    assert report.offered_rps == 4000.0
    assert report.completed == 40
    slo = report.slo_ms
    assert 0 < slo.p50 <= slo.p95 <= slo.p99 <= slo.maximum
    assert report.achieved_rps > 0
    assert 0 < report.batching_efficiency <= 1


def test_attribution_mode_attaches_model_latency(workload):
    """attribution=True adds per-request simulated hardware latency."""
    report = _serve(
        workload,
        LoadConfig(mode="closed", requests=8, concurrency=8, seed=2),
        attribution=True,
    )
    assert report.model_latency_ps is not None
    assert report.model_latency_ps.p50 > 0


def test_bench_json_matches_gate_schema(tmp_path, workload):
    """BENCH_serve.json carries {python, platform, metrics} for the gate."""
    report = _serve(
        workload, LoadConfig(mode="closed", requests=16, concurrency=8, seed=1)
    )
    path = tmp_path / "BENCH_serve.json"
    report.write_bench_json(path)
    record = json.loads(path.read_text())
    assert set(record) >= {"python", "platform", "metrics"}
    metrics = record["metrics"]
    assert metrics["serve_requests"] == 16.0
    assert metrics["serve_throughput_rps"] > 0
    assert 0 < metrics["serve_batching_efficiency"] <= 1
    assert all(key.startswith("serve_") for key in metrics)
    assert metrics["serve_latency_p50_ms"] <= metrics["serve_latency_max_ms"]


def test_back_to_back_runs_report_per_run_batches(workload):
    """A second run_load on one gateway reports its own deltas.

    Pre-fix the report quoted the gateway's cumulative counters, so a
    reused gateway inflated ``batches`` and skewed the efficiency metric
    the CI gate reads.
    """

    async def body():
        spec = ModelSpec.from_workload(workload)
        gateway = MicroBatchGateway(
            spec, GatewayConfig(max_batch=16, max_delay_ms=5.0)
        )
        await gateway.start()
        try:
            load = LoadConfig(mode="closed", requests=32, concurrency=8, seed=4)
            first = await run_load(gateway, workload.feature_vectors, load)
            second = await run_load(gateway, workload.feature_vectors, load)
        finally:
            await gateway.stop()
        return gateway, first, second

    gateway, first, second = asyncio.run(body())
    assert first.completed == second.completed == 32
    assert 0 < first.batches and 0 < second.batches
    # The two per-run deltas partition the gateway's cumulative counter;
    # cumulative reporting would have made second.batches equal the total.
    assert first.batches + second.batches == gateway.stats.batches
    assert 0 < second.batching_efficiency <= 1


def test_load_config_validation():
    """Bad run shapes fail before any serving starts."""
    with pytest.raises(ValueError, match="mode"):
        LoadConfig(mode="bursty")
    with pytest.raises(ValueError, match="requests"):
        LoadConfig(requests=0)
    with pytest.raises(ValueError, match="rate_rps"):
        LoadConfig(mode="open", rate_rps=0.0)
