"""Round-trip tests for the JSON-lines TCP front-end.

A real client connects over a loopback socket (port 0 → ephemeral), pins
the wire protocol: reply correlation by ``id``, batch provenance fields,
``bad-request`` / ``overloaded`` / ``shutting-down`` error replies, and
pipelined lines from one connection filling a shared word.
"""

from __future__ import annotations

import asyncio
import json
import time
from types import SimpleNamespace

import pytest

from repro.serve import GatewayConfig, InferenceServer, MicroBatchGateway
from repro.serve.worker import BatchReply


class EchoClassifier:
    """Replies with each operand's first feature bit."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s

    def classify(self, features):
        if self.delay_s:
            time.sleep(self.delay_s)
        bits = [int(row[0]) for row in features]
        return BatchReply(
            verdicts=["greater" if b else "less" for b in bits],
            decisions=bits,
        )

    def close(self) -> None:
        pass


async def _start(config: GatewayConfig, classifier=None):
    """A started gateway + server on an ephemeral loopback port."""
    gateway = MicroBatchGateway(
        classifier=classifier or EchoClassifier(), config=config
    )
    await gateway.start()
    server = InferenceServer(gateway, port=0)
    await server.start()
    return gateway, server


async def _request_lines(port: int, lines):
    """Send raw lines down one connection; return one parsed reply per line."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"".join(lines))
    await writer.drain()
    replies = [json.loads(await reader.readline()) for _ in lines]
    writer.close()
    await writer.wait_closed()
    return replies


def test_round_trip_with_id_correlation_and_provenance():
    """Pipelined requests share a word; replies correlate by client id."""

    async def body():
        gateway, server = await _start(GatewayConfig(max_batch=4, max_delay_ms=25.0))
        lines = [
            (json.dumps({"id": k, "features": [k % 2, 1]}) + "\n").encode()
            for k in range(4)
        ]
        replies = await _request_lines(server.port, lines)
        await server.stop()
        await gateway.stop()
        return replies

    replies = asyncio.run(body())
    by_id = {r["id"]: r for r in replies}
    assert set(by_id) == {0, 1, 2, 3}
    for k, reply in by_id.items():
        assert reply["decision"] == k % 2
        assert reply["verdict"] == ("greater" if k % 2 else "less")
        assert reply["batch_size"] == 4
        assert reply["flush"] == "full"


def test_bad_requests_get_error_replies_not_disconnects():
    """Malformed lines produce bad-request replies; the connection lives on."""

    async def body():
        gateway, server = await _start(GatewayConfig(max_batch=1, max_delay_ms=0.0))
        replies = await _request_lines(
            server.port,
            [
                b"this is not json\n",
                b'{"id": 1, "no_features": true}\n',
                b'{"id": 2, "features": [0, 2]}\n',
                b'{"id": 3, "features": [1]}\n',
            ],
        )
        await server.stop()
        await gateway.stop()
        return replies

    replies = asyncio.run(body())
    by_id = {r.get("id"): r for r in replies}
    assert by_id[None]["error"].startswith("bad-request")
    assert by_id[1]["error"].startswith("bad-request")
    assert by_id[2]["error"].startswith("bad-request")
    assert by_id[3]["decision"] == 1


def test_wrong_length_features_get_bad_request_not_internal():
    """A wrong-width 'features' list is rejected per request up front.

    Pre-fix it reached np.stack inside the batch and wedged the gateway;
    now the server checks the width against ``gateway.num_features`` and
    replies bad-request, while valid concurrent lines still classify.
    """

    async def body():
        classifier = EchoClassifier()
        classifier.spec = SimpleNamespace(config=SimpleNamespace(num_features=2))
        gateway, server = await _start(
            GatewayConfig(max_batch=2, max_delay_ms=20.0), classifier=classifier
        )
        replies = await _request_lines(
            server.port,
            [
                b'{"id": 0, "features": [1, 0, 1]}\n',
                b'{"id": 1, "features": [1, 0]}\n',
                b'{"id": 2, "features": [0, 1]}\n',
            ],
        )
        await server.stop()
        await gateway.stop()
        return replies

    replies = asyncio.run(body())
    by_id = {r["id"]: r for r in replies}
    assert by_id[0]["error"].startswith("bad-request")
    assert "length 2" in by_id[0]["error"]
    assert by_id[1]["decision"] == 1
    assert by_id[2]["decision"] == 0


def test_stop_does_not_hang_on_idle_keepalive_connection():
    """stop() completes even when a client never sends EOF.

    One idle connection stays open while another has a line in flight:
    stop() must cancel the idle read, drain the in-flight reply, and
    return — pre-fix it awaited client EOF forever.
    """

    async def body():
        gateway, server = await _start(
            GatewayConfig(max_batch=4, max_delay_ms=20.0),
            classifier=EchoClassifier(delay_s=0.05),
        )
        # Idle keep-alive client: connects, sends nothing, never closes.
        idle_reader, idle_writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        # Busy client: one request in flight when stop() lands.
        busy_reader, busy_writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        busy_writer.write(b'{"id": 1, "features": [1]}\n')
        await busy_writer.drain()
        await asyncio.sleep(0.02)
        await asyncio.wait_for(server.stop(), timeout=5.0)
        reply = json.loads(await busy_reader.readline())
        assert await idle_reader.read() == b""  # server closed the socket
        for writer in (idle_writer, busy_writer):
            writer.close()
        await gateway.stop()
        return reply

    reply = asyncio.run(body())
    assert reply == {
        "id": 1,
        "verdict": "greater",
        "decision": 1,
        "batch_size": 1,
        "flush": "deadline",
    }


def test_overload_maps_to_error_reply():
    """Queue-full rejections surface as {'error': 'overloaded'} replies."""

    async def body():
        gateway, server = await _start(
            GatewayConfig(max_batch=1, max_delay_ms=0.0, queue_depth=1),
            classifier=EchoClassifier(delay_s=0.25),
        )
        lines = [
            (json.dumps({"id": k, "features": [1]}) + "\n").encode()
            for k in range(6)
        ]
        replies = await _request_lines(server.port, lines)
        await server.stop()
        await gateway.stop()
        return replies

    replies = asyncio.run(body())
    overloaded = [r for r in replies if r.get("error") == "overloaded"]
    served = [r for r in replies if "decision" in r]
    assert len(overloaded) >= 1
    assert len(served) >= 1
    assert len(overloaded) + len(served) == 6


def test_stopped_gateway_maps_to_shutting_down():
    """Requests after gateway.stop() get the shutting-down error reply."""

    async def body():
        gateway, server = await _start(GatewayConfig(max_batch=1, max_delay_ms=0.0))
        await gateway.stop()
        replies = await _request_lines(
            server.port, [b'{"id": 9, "features": [0]}\n']
        )
        await server.stop()
        return replies

    replies = asyncio.run(body())
    assert replies == [{"id": 9, "error": "shutting-down"}]


def test_server_start_stop_contract():
    """Double start is refused; stop is idempotent."""

    async def body():
        gateway, server = await _start(GatewayConfig(max_batch=1, max_delay_ms=0.0))
        with pytest.raises(RuntimeError, match="already running"):
            await server.start()
        await server.stop()
        await server.stop()  # idempotent
        await gateway.stop()

    asyncio.run(body())


def test_metrics_command_returns_prometheus_text():
    """A bare 'metrics' line scrapes the registry; the connection lives on."""
    from repro.obs.metrics import MetricsRegistry

    async def body():
        registry = MetricsRegistry()
        gateway = MicroBatchGateway(
            classifier=EchoClassifier(),
            config=GatewayConfig(max_batch=2, max_delay_ms=25.0),
            registry=registry,
        )
        await gateway.start()
        server = InferenceServer(gateway, port=0)
        await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        for k in range(2):
            writer.write(
                (json.dumps({"id": k, "features": [k, 1]}) + "\n").encode()
            )
        await writer.drain()
        for _ in range(2):
            await reader.readline()
        writer.write(b"metrics\n")
        await writer.drain()
        lines = []
        while True:
            line = (await reader.readline()).decode()
            assert line, "connection closed before # EOF"
            lines.append(line)
            if line.startswith("# EOF"):
                break
        # the scrape is not a reply line: the connection keeps serving
        writer.write((json.dumps({"id": 9, "features": [1, 0]}) + "\n").encode())
        await writer.drain()
        after = json.loads(await reader.readline())
        writer.close()
        await writer.wait_closed()
        await server.stop()
        await gateway.stop()
        return "".join(lines), after

    text, after = asyncio.run(body())
    assert "# HELP requests_total" in text
    assert "# TYPE flush_reason counter" in text
    assert 'flush_reason{reason="full"} 1' in text
    assert 'requests_total{outcome="completed"} 2' in text
    assert text.endswith("# EOF\n")
    assert after["id"] == 9 and "verdict" in after
