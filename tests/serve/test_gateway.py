"""Behavioural tests for the micro-batching gateway.

These drive :class:`repro.serve.MicroBatchGateway` with controllable stub
classifiers (no circuits compiled), pinning the batching contract:

* a full word flushes immediately (``flush == "full"``);
* an under-full word flushes at the deadline, ragged (``"deadline"``);
* concurrent submitters each receive *their own* classification;
* the bounded queue rejects with :class:`GatewayOverloaded` when full;
* ``stop`` drains every admitted request before releasing the classifier;
* a classifier failure propagates to every submitter in the batch.
"""

from __future__ import annotations

import asyncio
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import (
    FLUSH_DEADLINE,
    FLUSH_DRAIN,
    FLUSH_FULL,
    GatewayClosed,
    GatewayConfig,
    GatewayOverloaded,
    MicroBatchGateway,
)
from repro.serve.worker import BatchReply


class EchoClassifier:
    """Replies with each operand's first feature bit; records batch shapes."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.batch_sizes = []
        self.closed = False
        self._lock = threading.Lock()

    def classify(self, features: np.ndarray) -> BatchReply:
        if self.delay_s:
            time.sleep(self.delay_s)
        with self._lock:
            self.batch_sizes.append(features.shape[0])
        bits = [int(row[0]) for row in features]
        return BatchReply(
            verdicts=["greater" if b else "less" for b in bits],
            decisions=bits,
        )

    def close(self) -> None:
        self.closed = True


class FailingClassifier:
    """Always raises — for error-propagation tests."""

    def classify(self, features):
        raise RuntimeError("backend exploded")

    def close(self) -> None:
        pass


def run(coro):
    """Run one async test body to completion."""
    return asyncio.run(coro)


def test_full_word_flushes_immediately():
    """max_batch concurrent submissions dispatch as one full-word batch."""

    async def body():
        stub = EchoClassifier()
        gw = MicroBatchGateway(
            classifier=stub,
            config=GatewayConfig(max_batch=4, max_delay_ms=10_000.0),
        )
        await gw.start()
        results = await asyncio.gather(*(gw.submit([i % 2, 0]) for i in range(4)))
        await gw.stop()
        return stub, results

    stub, results = run(body())
    assert stub.batch_sizes == [4]
    assert [r.flush_reason for r in results] == [FLUSH_FULL] * 4
    assert [r.batch_size for r in results] == [4] * 4


def test_deadline_flushes_ragged_word():
    """An under-full word flushes at the deadline with its ragged size."""

    async def body():
        stub = EchoClassifier()
        gw = MicroBatchGateway(
            classifier=stub,
            config=GatewayConfig(max_batch=64, max_delay_ms=30.0),
        )
        await gw.start()
        results = await asyncio.gather(*(gw.submit([1, 0]) for _ in range(3)))
        await gw.stop()
        return stub, results

    stub, results = run(body())
    assert stub.batch_sizes == [3]
    assert [r.flush_reason for r in results] == [FLUSH_DEADLINE] * 3
    assert all(r.batch_size == 3 for r in results)


def test_concurrent_submitters_get_their_own_replies():
    """Replies are routed per request, not per batch position."""

    async def body():
        stub = EchoClassifier()
        gw = MicroBatchGateway(
            classifier=stub,
            config=GatewayConfig(max_batch=8, max_delay_ms=20.0),
        )
        await gw.start()

        async def one(bit):
            result = await gw.submit([bit, 1])
            return bit, result.decision

        pairs = await asyncio.gather(*(one(k % 2) for k in range(24)))
        await gw.stop()
        return pairs

    for bit, decision in run(body()):
        assert decision == bit


def test_bounded_queue_rejects_overload():
    """When the queue is full, submit fails fast with GatewayOverloaded."""

    async def body():
        stub = EchoClassifier(delay_s=0.2)
        gw = MicroBatchGateway(
            classifier=stub,
            config=GatewayConfig(max_batch=1, max_delay_ms=0.0, queue_depth=2),
        )
        await gw.start()
        first = asyncio.ensure_future(gw.submit([1]))
        await asyncio.sleep(0.05)  # let the batcher pull it and block in classify
        backlog = [asyncio.ensure_future(gw.submit([0])) for _ in range(2)]
        await asyncio.sleep(0)  # queue now holds queue_depth pending requests
        with pytest.raises(GatewayOverloaded):
            await gw.submit([0])
        results = await asyncio.gather(first, *backlog)
        await gw.stop()
        return gw, results

    gw, results = run(body())
    assert gw.stats.rejected == 1
    assert gw.stats.completed == 3
    assert [r.decision for r in results] == [1, 0, 0]


def test_stop_drains_admitted_requests():
    """Every request admitted before stop() still gets its reply."""

    async def body():
        stub = EchoClassifier(delay_s=0.05)
        gw = MicroBatchGateway(
            classifier=stub,
            config=GatewayConfig(max_batch=4, max_delay_ms=10_000.0),
        )
        await gw.start()
        # 6 requests: one full word dispatches, 2 remain queued behind the
        # busy worker slot when stop() lands — they must drain, not hang.
        pending = [asyncio.ensure_future(gw.submit([1, 0])) for _ in range(6)]
        await asyncio.sleep(0.02)
        await gw.stop()
        results = await asyncio.gather(*pending)
        with pytest.raises(GatewayClosed):
            await gw.submit([0, 0])
        return stub, gw, results

    stub, gw, results = run(body())
    assert stub.closed
    assert len(results) == 6
    assert gw.stats.completed == 6
    assert sorted(stub.batch_sizes) == [2, 4]
    assert {r.flush_reason for r in results} == {FLUSH_FULL, FLUSH_DRAIN}


def test_classifier_failure_propagates_to_all_submitters():
    """A failing batch rejects every future in it with the original error."""

    async def body():
        gw = MicroBatchGateway(
            classifier=FailingClassifier(),
            config=GatewayConfig(max_batch=2, max_delay_ms=10_000.0),
        )
        await gw.start()
        results = await asyncio.gather(
            gw.submit([1]), gw.submit([0]), return_exceptions=True
        )
        await gw.stop()
        return results

    results = run(body())
    assert len(results) == 2
    assert all(isinstance(r, RuntimeError) for r in results)
    assert all("backend exploded" in str(r) for r in results)


def test_known_width_rejects_wrong_length_per_request():
    """With a discoverable feature width, shape errors are per-request.

    The wrong-length submission fails immediately with ValueError and the
    valid request it would have been co-batched with still classifies —
    one malformed client cannot poison its micro-batch.
    """

    async def body():
        stub = EchoClassifier()
        stub.spec = SimpleNamespace(config=SimpleNamespace(num_features=2))
        gw = MicroBatchGateway(
            classifier=stub,
            config=GatewayConfig(max_batch=2, max_delay_ms=20.0),
        )
        await gw.start()
        assert gw.num_features == 2
        good = asyncio.ensure_future(gw.submit([1, 0]))
        with pytest.raises(ValueError, match="expected 2 features, got 3"):
            await gw.submit([1, 0, 1])
        with pytest.raises(ValueError, match="flat vector"):
            await gw.submit([[1, 0]])
        result = await good
        await gw.stop()
        return result

    result = run(body())
    assert result.decision == 1


def test_mixed_length_batch_fails_without_wedging_the_gateway():
    """A ragged word (width unknown) errors out and releases its slot.

    Pre-fix, np.stack raised outside the error fan-out: every future in
    the batch hung and the dispatch slot leaked, permanently wedging the
    gateway.  Now all submitters get the error and the next word serves.
    """

    async def body():
        stub = EchoClassifier()
        gw = MicroBatchGateway(
            classifier=stub,
            config=GatewayConfig(max_batch=2, max_delay_ms=100.0),
        )
        await gw.start()
        mixed = await asyncio.gather(
            gw.submit([1]), gw.submit([1, 0]), return_exceptions=True
        )
        # workers=0 → a single dispatch slot: a leak would hang this.
        follow_up = await asyncio.wait_for(gw.submit([0]), timeout=5.0)
        await gw.stop()
        return mixed, follow_up

    mixed, follow_up = run(body())
    assert all(isinstance(r, ValueError) for r in mixed)
    assert follow_up.decision == 0


def test_submit_before_start_raises_closed():
    """A gateway that never started refuses submissions."""

    async def body():
        gw = MicroBatchGateway(classifier=EchoClassifier())
        with pytest.raises(GatewayClosed):
            await gw.submit([1])

    run(body())


def test_config_validation_and_constructor_contract():
    """Knob ranges and the spec-xor-classifier constructor rule."""
    with pytest.raises(ValueError, match="max_batch"):
        GatewayConfig(max_batch=0)
    with pytest.raises(ValueError, match="queue_depth"):
        GatewayConfig(queue_depth=0)
    with pytest.raises(ValueError, match="exactly one"):
        MicroBatchGateway()
    with pytest.raises(ValueError, match="exactly one"):
        MicroBatchGateway(spec=object(), classifier=EchoClassifier())


def test_stats_track_flush_reasons_and_efficiency():
    """Counters add up and batching_efficiency is lanes over capacity."""

    async def body():
        stub = EchoClassifier()
        gw = MicroBatchGateway(
            classifier=stub,
            config=GatewayConfig(max_batch=4, max_delay_ms=25.0),
        )
        await gw.start()
        await asyncio.gather(*(gw.submit([1]) for _ in range(4)))  # full
        await asyncio.gather(*(gw.submit([0]) for _ in range(2)))  # deadline
        await gw.stop()
        return gw

    gw = run(body())
    assert gw.stats.submitted == 6
    assert gw.stats.completed == 6
    assert gw.stats.batches == 2
    assert gw.stats.full_flushes == 1
    assert gw.stats.deadline_flushes == 1
    assert gw.stats.lanes == 6
    assert gw.stats.batching_efficiency == pytest.approx(6 / 8)


def test_stats_snapshot_is_an_independent_copy():
    """snapshot() freezes the counters; the live stats keep moving."""

    async def body():
        gw = MicroBatchGateway(
            classifier=EchoClassifier(),
            config=GatewayConfig(max_batch=4, max_delay_ms=25.0),
        )
        await gw.start()
        await asyncio.gather(*(gw.submit([1]) for _ in range(4)))
        before = gw.stats.snapshot()
        await asyncio.gather(*(gw.submit([0]) for _ in range(2)))
        await gw.stop()
        return gw, before

    gw, before = run(body())
    assert before.completed == 4
    assert gw.stats.completed == 6  # live counters moved on
    assert before is not gw.stats


def test_stats_delta_reports_the_window_only():
    """delta(since) subtracts counters but carries max_batch through."""

    async def body():
        gw = MicroBatchGateway(
            classifier=EchoClassifier(),
            config=GatewayConfig(max_batch=4, max_delay_ms=25.0),
        )
        await gw.start()
        await asyncio.gather(*(gw.submit([1]) for _ in range(4)))  # full word
        before = gw.stats.snapshot()
        await asyncio.gather(*(gw.submit([0]) for _ in range(2)))  # deadline
        await gw.stop()
        return gw.stats.delta(before)

    window = run(body())
    assert window.submitted == 2
    assert window.completed == 2
    assert window.batches == 1
    assert window.deadline_flushes == 1
    assert window.full_flushes == 0
    assert window.lanes == 2
    assert window.max_batch == 4  # configuration, not a counter
    assert window.batching_efficiency == pytest.approx(2 / 4)


def test_gateway_reports_into_an_injected_registry():
    """requests_total / flush_reason / queue depth land in the registry."""
    from repro.obs.metrics import MetricsRegistry, series_value

    async def body():
        registry = MetricsRegistry()
        gw = MicroBatchGateway(
            classifier=EchoClassifier(),
            config=GatewayConfig(max_batch=4, max_delay_ms=25.0),
            registry=registry,
        )
        await gw.start()
        await asyncio.gather(*(gw.submit([1]) for _ in range(4)))
        await gw.stop()
        return registry

    registry = run(body())
    snapshot = registry.snapshot()
    assert series_value(snapshot["requests_total"], outcome="submitted") == 4
    assert series_value(snapshot["requests_total"], outcome="completed") == 4
    assert series_value(snapshot["flush_reason"], reason=FLUSH_FULL) == 1
    assert "gateway_queue_depth" in snapshot
