"""Metrics-registry tests: typed metrics, labels, Prometheus rendering."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_total,
    default_registry,
    series_value,
)


def test_counter_accumulates_per_label_set():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", "Requests by outcome.")
    counter.inc(outcome="completed")
    counter.inc(2, outcome="completed")
    counter.inc(outcome="rejected")
    assert counter.value(outcome="completed") == 3
    assert counter.value(outcome="rejected") == 1
    assert counter.value(outcome="missing") == 0


def test_counter_rejects_negative_increments():
    counter = Counter("c", "help")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_inc():
    gauge = Gauge("depth", "help")
    gauge.set(5)
    gauge.inc(-2)
    assert gauge.value() == 3


def test_histogram_snapshot_counts_per_bucket():
    hist = Histogram("lat", "help", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 50.0):
        hist.observe(value)
    snapshot = hist.snapshot()
    assert snapshot["buckets"] == [0.1, 1.0]
    assert snapshot["counts"] == [1, 1, 1]  # per-bucket, final slot = +Inf
    assert snapshot["count"] == 3
    assert snapshot["sum"] == pytest.approx(50.55)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("h", "help", buckets=(1.0, 0.5))


def test_registry_is_get_or_create_and_type_checked():
    registry = MetricsRegistry()
    first = registry.counter("hits", "help")
    assert registry.counter("hits", "help") is first
    with pytest.raises(TypeError):
        registry.gauge("hits", "help")


def test_prometheus_rendering_shape():
    registry = MetricsRegistry()
    counter = registry.counter("flush_reason", "Batches by flush reason.")
    counter.inc(reason="full")
    counter.inc(3, reason="deadline")
    gauge = registry.gauge("queue_depth", "Waiting requests.")
    gauge.set(7)
    text = registry.render_prometheus()
    assert "# HELP flush_reason Batches by flush reason." in text
    assert "# TYPE flush_reason counter" in text
    assert 'flush_reason{reason="deadline"} 3' in text
    assert 'flush_reason{reason="full"} 1' in text
    assert "# TYPE queue_depth gauge" in text
    assert "queue_depth 7" in text


def test_prometheus_histogram_exposition():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.5,))
    hist.observe(0.25)
    hist.observe(2.0)
    text = registry.render_prometheus()
    assert 'lat_seconds_bucket{le="0.5"} 1' in text
    assert 'lat_seconds_bucket{le="+Inf"} 2' in text
    assert "lat_seconds_sum 2.25" in text
    assert "lat_seconds_count 2" in text


def test_snapshot_helpers():
    registry = MetricsRegistry()
    counter = registry.counter("hits", "help")
    counter.inc(5, kind="a")
    counter.inc(2, kind="b")
    snapshot = registry.snapshot()["hits"]
    assert counter_total(snapshot) == 7
    assert series_value(snapshot, kind="a") == 5
    assert series_value(snapshot, kind="missing") == 0.0


def test_reset_drops_every_metric():
    registry = MetricsRegistry()
    registry.counter("hits", "help").inc()
    registry.reset()
    assert registry.names() == []
    assert registry.counter("hits", "help").value() == 0  # fresh metric


def test_default_registry_is_a_singleton():
    assert default_registry() is default_registry()


def test_serve_metric_names_are_registered_by_a_gateway():
    """The metric catalogue the observability guide documents exists."""
    pytest.importorskip("numpy")
    import numpy as np

    from repro.serve.gateway import MicroBatchGateway
    from repro.serve.worker import ModelSpec
    from repro.datapath.datapath import DatapathConfig

    registry = MetricsRegistry()
    spec = ModelSpec(
        config=DatapathConfig(num_features=2, clauses_per_polarity=2),
        exclude=np.zeros((2, 2 * 2 * 2), dtype=np.uint8),
    )
    MicroBatchGateway(spec, registry=registry)
    assert {"requests_total", "flush_reason", "gateway_queue_depth"} <= set(
        registry.names()
    )
