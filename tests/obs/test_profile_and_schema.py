"""Profile-export and schema-validator tests (deterministic content only)."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.obs.profile import (
    format_table,
    self_time_table,
    to_trace_events,
    tracing_session,
    write_trace,
)
from repro.obs.schema import (
    METRICS_SNAPSHOT_SCHEMA,
    SchemaError,
    TRACE_EVENTS_SCHEMA,
    validate,
    validate_metrics_snapshot,
    validate_trace_events,
)
from repro.obs.trace import SpanRecord


def _record(name, span_id, parent_id=None, start=0.0, dur=100.0):
    return SpanRecord(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        start_us=start,
        duration_us=dur,
        pid=1,
        tid=1,
        attrs={},
    )


@pytest.fixture(autouse=True)
def clean_tracer():
    """Keep the default tracer inert across these tests."""
    trace.reset()
    trace.disable()
    yield
    trace.reset()
    trace.disable()


def test_to_trace_events_normalizes_timestamps_and_validates():
    records = [
        _record("root", "1:1", start=5_000.0, dur=300.0),
        _record("leaf", "1:2", parent_id="1:1", start=5_100.0, dur=100.0),
    ]
    payload = to_trace_events(records)
    names = validate_trace_events(payload)
    assert names == ["leaf", "root"]
    first, second = payload["traceEvents"]
    assert first["ts"] == 0.0  # origin-shifted to the earliest span
    assert second["ts"] == 100.0
    assert second["args"]["parent_id"] == "1:1"
    assert payload["displayTimeUnit"] == "ms"


def test_self_time_subtracts_direct_children_only():
    records = [
        _record("root", "1:1", start=0.0, dur=1000.0),
        _record("mid", "1:2", parent_id="1:1", start=100.0, dur=600.0),
        _record("leaf", "1:3", parent_id="1:2", start=200.0, dur=200.0),
    ]
    rows = {row["name"]: row for row in self_time_table(records)}
    assert rows["root"]["self_us"] == pytest.approx(400.0)  # 1000 - 600
    assert rows["mid"]["self_us"] == pytest.approx(400.0)  # 600 - 200
    assert rows["leaf"]["self_us"] == pytest.approx(200.0)
    lines = format_table(self_time_table(records, top=2))
    assert len(lines) == 3  # header + top-2 rows


def test_write_trace_picks_format_from_extension(tmp_path):
    records = [_record("only", "1:1")]
    chrome = tmp_path / "prof.json"
    raw = tmp_path / "prof.jsonl"
    write_trace(chrome, records)
    write_trace(raw, records)
    payload = json.loads(chrome.read_text())
    assert validate_trace_events(payload) == ["only"]
    assert [r.name for r in trace.load_jsonl(raw)] == ["only"]


def test_tracing_session_writes_even_on_failure(tmp_path):
    path = tmp_path / "crash.json"
    with pytest.raises(RuntimeError):
        with tracing_session(path):
            with trace.span("doomed"):
                pass
            raise RuntimeError("boom")
    assert validate_trace_events(json.loads(path.read_text())) == ["doomed"]
    assert not trace.enabled()  # session disabled tracing on exit


def test_tracing_session_none_is_a_noop(tmp_path):
    with tracing_session(None):
        assert not trace.enabled()


def test_schema_rejects_missing_required_and_bad_enum():
    with pytest.raises(SchemaError, match="traceEvents"):
        validate({"wrong": []}, TRACE_EVENTS_SCHEMA)
    bad_phase = {
        "traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "dur": 1, "pid": 1, "tid": 1}
        ]
    }
    with pytest.raises(SchemaError, match="ph"):
        validate(bad_phase, TRACE_EVENTS_SCHEMA)


def test_schema_type_checks_reject_bools_as_numbers():
    with pytest.raises(SchemaError):
        validate(True, {"type": "integer"})
    validate(3, {"type": "number"})  # ints are numbers


def test_metrics_snapshot_schema_round_trip():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("hits", "help").inc(kind="a")
    registry.histogram("lat", "help", buckets=(1.0,)).observe(0.5)
    registry.gauge("depth", "help").set(2)
    names = validate_metrics_snapshot(registry.snapshot())
    assert names == ["depth", "hits", "lat"]
    with pytest.raises(SchemaError):
        validate_metrics_snapshot({"bad": {"kind": "sneaky"}})
    assert METRICS_SNAPSHOT_SCHEMA["type"] == "object"
