"""Tracing-core tests: nesting, zero-cost disabled path, cross-context spans."""

from __future__ import annotations

import asyncio
import os
import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with a disabled, empty default tracer."""
    trace.reset()
    trace.disable()
    yield
    trace.reset()
    trace.disable()


def test_disabled_tracer_returns_the_noop_singleton():
    assert trace.span("anything") is trace.NOOP_SPAN
    assert trace.span("other", attr=1) is trace.NOOP_SPAN
    with trace.span("nested"):
        pass  # context manager protocol works on the no-op
    assert trace.records() == []


def test_noop_span_accepts_attributes_silently():
    trace.NOOP_SPAN.add(lanes=64, reason="full")
    assert trace.records() == []


def test_span_records_name_duration_and_attrs():
    trace.enable()
    with trace.span("work", kind="unit") as span:
        span.add(items=3)
    (record,) = trace.records()
    assert record.name == "work"
    assert record.attrs == {"kind": "unit", "items": 3}
    assert record.duration_us >= 0.0
    assert record.pid == os.getpid()
    assert record.parent_id is None


def test_nested_spans_are_parented():
    trace.enable()
    with trace.span("outer"):
        with trace.span("inner"):
            pass
        with trace.span("sibling"):
            pass
    by_name = {r.name: r for r in trace.records()}
    assert by_name["outer"].parent_id is None
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["sibling"].parent_id == by_name["outer"].span_id


def test_parent_restored_after_exception():
    trace.enable()
    with trace.span("outer"):
        with pytest.raises(RuntimeError):
            with trace.span("failing"):
                raise RuntimeError("boom")
        with trace.span("after"):
            pass
    by_name = {r.name: r for r in trace.records()}
    assert by_name["failing"].parent_id == by_name["outer"].span_id
    assert by_name["after"].parent_id == by_name["outer"].span_id


def test_span_ids_carry_the_pid_prefix():
    trace.enable()
    with trace.span("tagged"):
        pass
    (record,) = trace.records()
    assert record.span_id.startswith(f"{os.getpid():x}:")


def test_threads_get_independent_span_stacks():
    trace.enable()
    ready = threading.Barrier(2)

    def worker(tag: str) -> None:
        ready.wait()
        with trace.span(f"thread-{tag}"):
            with trace.span(f"child-{tag}"):
                pass

    threads = [threading.Thread(target=worker, args=(t,)) for t in "ab"]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    by_name = {r.name: r for r in trace.records()}
    for tag in "ab":
        assert by_name[f"thread-{tag}"].parent_id is None
        assert by_name[f"child-{tag}"].parent_id == by_name[f"thread-{tag}"].span_id


def test_asyncio_tasks_inherit_the_creating_span():
    trace.enable()

    async def child() -> None:
        with trace.span("task"):
            await asyncio.sleep(0)

    async def main() -> None:
        with trace.span("parent"):
            task = asyncio.create_task(child())
        # parent span is closed; the task still nests under it because
        # create_task copied the context at creation time.
        await task

    asyncio.run(main())
    by_name = {r.name: r for r in trace.records()}
    assert by_name["task"].parent_id == by_name["parent"].span_id


def test_drain_empties_and_adopt_refills():
    trace.enable()
    with trace.span("one"):
        pass
    drained = trace.drain()
    assert [r.name for r in drained] == ["one"]
    assert trace.records() == []
    trace.adopt(drained)
    assert [r.name for r in trace.records()] == ["one"]


def test_capture_isolates_and_reparent_attaches():
    trace.enable()
    with trace.span("outer") as outer_span:
        parent_id = trace.current_span_id()
        with trace.capture() as captured:
            with trace.span("shipped"):
                with trace.span("shipped-child"):
                    pass
        # captured records never reached the default tracer...
        assert {r.name for r in trace.records()} == set()
        trace.adopt(trace.reparent(captured.records, parent_id))
    del outer_span
    by_name = {r.name: r for r in trace.records()}
    assert by_name["shipped"].parent_id == by_name["outer"].span_id
    # only roots are reparented; inner structure is preserved
    assert by_name["shipped-child"].parent_id == by_name["shipped"].span_id


def test_jsonl_round_trip(tmp_path):
    trace.enable()
    with trace.span("root", size=2):
        with trace.span("leaf"):
            pass
    path = tmp_path / "spans.jsonl"
    trace.export_jsonl(path, trace.records())
    loaded = trace.load_jsonl(path)
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in trace.records()]


def test_local_tracer_does_not_touch_the_default_one():
    local = trace.Tracer()
    local.enable()
    with local.span("private"):
        pass
    assert len(local.records()) == 1
    assert trace.records() == []
