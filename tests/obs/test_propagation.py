"""Cross-process span propagation through the parallel runner."""

from __future__ import annotations

import os

import pytest

from repro.analysis.runner import run_parallel
from repro.obs import trace


@pytest.fixture(autouse=True)
def clean_tracer():
    """Start and end with a disabled, empty default tracer."""
    trace.reset()
    trace.disable()
    yield
    trace.reset()
    trace.disable()


def _square(item: int) -> int:
    """Picklable work unit that also emits a span of its own."""
    with trace.span("square", item=item):
        return item * item


def test_serial_run_emits_chunk_spans():
    trace.enable()
    with trace.span("driver"):
        results = run_parallel(_square, list(range(6)), jobs=1)
    assert results == [k * k for k in range(6)]
    by_name = {}
    for record in trace.records():
        by_name.setdefault(record.name, []).append(record)
    (run_span,) = by_name["run_parallel"]
    assert run_span.parent_id == by_name["driver"][0].span_id
    for chunk in by_name["run_parallel.chunk"]:
        assert chunk.parent_id == run_span.span_id
    # the work units' own spans nest under their chunk
    chunk_ids = {c.span_id for c in by_name["run_parallel.chunk"]}
    assert len(by_name["square"]) == 6
    for record in by_name["square"]:
        assert record.parent_id in chunk_ids


def test_parallel_run_ships_worker_spans_back():
    trace.enable()
    with trace.span("driver"):
        results = run_parallel(_square, list(range(8)), jobs=2)
    assert results == [k * k for k in range(8)]
    records = trace.records()
    by_name = {}
    for record in records:
        by_name.setdefault(record.name, []).append(record)
    assert len(by_name["square"]) == 8
    (run_span,) = by_name["run_parallel"]
    for chunk in by_name["run_parallel.chunk"]:
        assert chunk.parent_id == run_span.span_id
    # worker spans came from other processes, parent chain intact
    worker_pids = {r.pid for r in by_name["square"]}
    assert worker_pids and os.getpid() not in worker_pids
    chunk_ids = {c.span_id for c in by_name["run_parallel.chunk"]}
    for record in by_name["square"]:
        assert record.parent_id in chunk_ids


def test_parallel_results_identical_with_tracing_on_and_off():
    items = list(range(10))
    trace.disable()
    plain = run_parallel(_square, items, jobs=2)
    trace.enable()
    traced = run_parallel(_square, items, jobs=2)
    assert plain == traced


def test_untraced_parallel_run_collects_nothing():
    results = run_parallel(_square, [1, 2, 3], jobs=2)
    assert results == [1, 4, 9]
    assert trace.records() == []
