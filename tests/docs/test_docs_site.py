"""Dependency-free integrity checks for the mkdocs documentation site.

The real build (``mkdocs build --strict``) runs in the CI ``docs`` job,
where the ``[docs]`` extra is installed.  These tests pin the failure modes
strict mode would catch — dangling nav entries, dead internal links,
``::: module`` directives that do not import — without requiring mkdocs in
the tier-1 environment, so a broken docs tree fails fast everywhere.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"

#: `- Title: path.md` nav entries (also matches a bare `- path.md`).
_NAV_PAGE = re.compile(r"^\s*-\s+(?:[^:#]+:\s+)?(\S+\.md)\s*$")
#: Markdown links to local .md targets (external http(s) links excluded).
_MD_LINK = re.compile(r"\]\((?!https?://)([^)#]+\.md)(?:#[^)]*)?\)")
#: mkdocstrings autodoc directives.
_AUTODOC = re.compile(r"^:::\s+([\w.]+)\s*$", re.MULTILINE)


def nav_pages():
    return [
        match.group(1)
        for line in MKDOCS_YML.read_text().splitlines()
        if (match := _NAV_PAGE.match(line))
    ]


def doc_files():
    return sorted(DOCS.rglob("*.md"))


def test_docs_tree_exists_and_is_nontrivial():
    assert MKDOCS_YML.is_file()
    pages = doc_files()
    assert len(pages) >= 20  # index + 4 guides + 11 architecture + 5 API pages
    for page in pages:
        assert page.read_text().lstrip().startswith("#"), f"{page} has no title"


def test_every_nav_entry_resolves_to_a_real_page():
    pages = nav_pages()
    assert "index.md" in pages
    assert len(pages) >= 20
    for rel in pages:
        assert (DOCS / rel).is_file(), f"mkdocs.yml nav references missing {rel}"


def test_every_page_is_reachable_from_the_nav():
    navigated = {str((DOCS / rel).resolve()) for rel in nav_pages()}
    for page in doc_files():
        assert str(page.resolve()) in navigated, f"{page} not listed in mkdocs.yml nav"


def test_internal_links_resolve():
    for page in doc_files():
        for target in _MD_LINK.findall(page.read_text()):
            resolved = (page.parent / target).resolve()
            assert resolved.is_file(), f"{page}: dead link to {target}"


def test_autodoc_directives_import():
    """Every ``::: module`` the API reference renders must be importable."""
    directives = [
        (page, module)
        for page in doc_files()
        for module in _AUTODOC.findall(page.read_text())
    ]
    assert directives, "API reference pages carry no ::: directives"
    for page, module in directives:
        try:
            importlib.import_module(module)
        except Exception as err:  # pragma: no cover - the assert is the point
            pytest.fail(f"{page}: `::: {module}` does not import: {err}")


def test_autodoc_covers_the_docstring_enforced_surface():
    """The D1-enforced modules are exactly the ones the API reference renders."""
    rendered = {
        module
        for page in doc_files()
        for module in _AUTODOC.findall(page.read_text())
    }
    for expected in (
        "repro.sim.program",
        "repro.sim.program_cache",
        "repro.sim.kernels",
        "repro.sim.backends.base",
        "repro.sim.backends.batch",
        "repro.sim.backends.bitpack",
        "repro.sim.backends.event",
        "repro.sim.backends.timed",
        "repro.analysis.measure",
        "repro.analysis.latency",
        "repro.analysis.distributions",
        "repro.explore.grid",
        "repro.explore.evaluate",
        "repro.explore.store",
        "repro.explore.pareto",
        "repro.explore.queue",
        "repro.explore.fronts",
        "repro.sim.backends.session",
        "repro.serve.gateway",
        "repro.serve.worker",
        "repro.serve.server",
        "repro.serve.loadgen",
        "repro.obs.trace",
        "repro.obs.metrics",
        "repro.obs.profile",
        "repro.obs.schema",
    ):
        assert expected in rendered, f"{expected} missing from the API reference"
