"""Pin the reproducing-the-paper walkthrough against the code it documents.

The guide promises runnable commands and expected-output excerpts for every
paper artefact.  These dependency-free checks (no mkdocs, no simulation)
parse the guide and assert that:

* every ``python examples/...`` command references a script that exists and
  whose documented flags are real argparse options of that script;
* every pinned output excerpt matches what the formatting code actually
  emits (table headers) or what the example prints (section titles);
* the guide cross-links the timing-and-energy-model guide and vice versa.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
GUIDE = REPO / "docs" / "guides" / "reproducing-the-paper.md"
TIMING_GUIDE = REPO / "docs" / "guides" / "timing-and-energy-model.md"

_COMMAND = re.compile(r"^(?:PYTHONPATH=\S+\s+)?python (\S+\.py|-m \S+)(.*)$")
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")


def guide_commands():
    commands = []
    for block in re.findall(r"```bash\n(.*?)```", GUIDE.read_text(), re.DOTALL):
        for line in block.strip().splitlines():
            match = _COMMAND.match(line.strip())
            if match:
                commands.append((match.group(1), match.group(2)))
    return commands


def test_guide_exists_and_covers_every_artefact():
    text = GUIDE.read_text()
    for artefact in ("Table I", "Figure 3", "distribution"):
        assert artefact in text, f"guide does not cover {artefact}"


def test_every_documented_command_references_a_real_script():
    commands = guide_commands()
    assert len(commands) >= 4, "guide lost its runnable commands"
    for target, _args in commands:
        if target.startswith("-m "):
            continue  # module invocations (pytest) are checked below
        assert (REPO / target).is_file(), f"guide references missing {target}"


def test_every_documented_flag_is_a_real_argparse_option():
    for target, args in guide_commands():
        if target.startswith("-m "):
            continue
        source = (REPO / target).read_text()
        for flag in _FLAG.findall(args):
            assert f'"{flag}"' in source, f"{target} has no argparse flag {flag}"


def test_timing_backend_flag_is_documented_on_each_artefact_command():
    example_commands = [
        (t, a) for t, a in guide_commands() if t.startswith("examples/")
    ]
    assert len(example_commands) >= 4
    for target, args in example_commands:
        assert "--timing-backend" in args, f"{target} command lost --timing-backend"


def test_table1_header_excerpt_matches_formatter():
    """The pinned Table-I header is what format_table1 actually emits."""
    import sys

    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.analysis.tables import TABLE1_COLUMNS
    finally:
        sys.path.pop(0)
    text = GUIDE.read_text()
    for _key, label in TABLE1_COLUMNS:
        assert label in text, f"Table-I column {label!r} missing from the guide excerpt"


def test_figure3_header_excerpt_matches_formatter():
    """The pinned Figure-3 header is the format_figure3 header line."""
    header = "VDD (V)  Avg Latency (ps)  Max Latency (ps)  Functional  Correct"
    assert header in GUIDE.read_text()
    source = (REPO / "src" / "repro" / "analysis" / "tables.py").read_text()
    assert header in source, "format_figure3 header changed; update the guide"


def test_distribution_excerpts_match_the_example():
    """The pinned section titles are printed verbatim by the example."""
    example = (REPO / "examples" / "latency_distribution.py").read_text()
    text = GUIDE.read_text()
    for excerpt in (
        "Positive-vote distribution:",
        "Comparator decision-depth distribution (1 = decided at the MSB):",
        "Mean latency by comparator decision depth:",
    ):
        assert excerpt in text, f"guide lost the excerpt {excerpt!r}"
        assert excerpt in example, f"example no longer prints {excerpt!r}"


def test_guides_cross_link_each_other():
    assert "timing-and-energy-model.md" in GUIDE.read_text()
    assert "reproducing-the-paper.md" in TIMING_GUIDE.read_text()
    backend_guide = (REPO / "docs" / "guides" / "choosing-a-backend.md").read_text()
    assert "timing-and-energy-model.md" in backend_guide
    assert "reproducing-the-paper.md" in backend_guide
