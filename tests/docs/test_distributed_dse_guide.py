"""Pin the distributed-DSE guide against the code it documents.

Dependency-free (no mkdocs, no worker processes): the checks parse the
guide and assert that every documented CLI flag is a real argparse option
of ``examples/explore_design_space.py``, that the documented queue layout,
exit code, metrics and span names exist in ``repro.explore.queue``, and
that the guide is cross-linked from the pages that promise it.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
GUIDE = REPO / "docs" / "guides" / "distributed-dse.md"
DRIVER = REPO / "examples" / "explore_design_space.py"
QUEUE = REPO / "src" / "repro" / "explore" / "queue.py"

_COMMAND = re.compile(r"^(?:PYTHONPATH=\S+\s+)?python (\S+\.py)(.*)$")
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")


def guide_commands():
    commands = []
    for block in re.findall(r"```bash\n(.*?)```", GUIDE.read_text(), re.DOTALL):
        for line in block.strip().replace("\\\n", " ").splitlines():
            match = _COMMAND.match(line.strip())
            if match:
                commands.append((match.group(1), match.group(2)))
    return commands


def test_guide_exists_and_covers_the_contract():
    text = GUIDE.read_text()
    for topic in (
        "lease",
        "Heartbeats",
        "Stale-lease reclaim",
        "Crash-resume",
        "Quarantine semantics",
        "Sharding across hosts",
        "byte-identical",
        "journal",
        "dashboard",
    ):
        assert topic in text, f"distributed-DSE guide does not cover {topic!r}"


def test_every_documented_command_and_flag_is_real():
    commands = guide_commands()
    assert len(commands) >= 4, "guide lost its runnable commands"
    for target, args in commands:
        script = REPO / target
        assert script.is_file(), f"guide references missing {target}"
        source = script.read_text()
        for flag in _FLAG.findall(args):
            assert f'"{flag}"' in source, f"{target} has no argparse flag {flag}"


def test_documented_queue_layout_matches_the_code():
    """Paths and exit code in the guide are the ones the code uses."""
    text = GUIDE.read_text()
    queue_src = QUEUE.read_text()
    for name, pin in (
        ("queue/manifest.json", '_MANIFEST = "manifest.json"'),
        ("queue/journal.jsonl", '_JOURNAL = "journal.jsonl"'),
        ("queue/leases/", '_LEASES = "leases"'),
        ("queue/quarantine/", '_QUARANTINE = "quarantine"'),
    ):
        assert name in text, f"guide lost the path {name!r}"
        assert pin in queue_src, f"queue.py no longer defines {pin!r}"
    assert "code **3**" in text
    assert "EXIT_INCOMPLETE = 3" in DRIVER.read_text()


def test_documented_metrics_and_spans_exist():
    text = GUIDE.read_text()
    queue_src = QUEUE.read_text()
    store_src = (REPO / "src" / "repro" / "explore" / "store.py").read_text()
    for metric in (
        "dse_points_claimed_total",
        "dse_leases_reclaimed_total",
        "dse_points_completed_total",
        "dse_points_quarantined_total",
        "dse_queue_depth",
    ):
        assert f"`{metric}`" in text, f"guide lost the metric {metric}"
        assert f'"{metric}"' in queue_src, f"queue.py lost the metric {metric}"
    assert "`dse_store_corrupt_total`" in text
    assert '"dse_store_corrupt_total"' in store_src
    for span in (
        "dse.queue.claim",
        "dse.queue.reclaim",
        "dse.queue.quarantine",
        "dse.queue.evaluate",
        "dse.queue.sweep",
    ):
        assert f"`{span}`" in text, f"guide lost the span {span}"
        assert f'"{span}"' in queue_src, f"queue.py lost the span {span}"


def test_documented_gated_metric_is_in_the_baseline():
    text = GUIDE.read_text()
    assert "dse_resume_overhead_pct" in text
    baseline = (REPO / "benchmarks" / "baseline.json").read_text()
    assert '"dse_resume_overhead_pct"' in baseline
    assert "dse_resume_overhead_pct" in DRIVER.read_text()


def test_guide_dashboard_figure_uses_the_palette():
    """The inline sample figure sticks to the repo visualization palette."""
    text = GUIDE.read_text()
    assert "<svg" in text
    assert "#2a78d6" in text  # categorical slot 1 (front)
    fronts_src = (REPO / "src" / "repro" / "explore" / "fronts.py").read_text()
    assert "#2a78d6" in fronts_src and "#3987e5" in fronts_src


def test_distributed_dse_guide_is_cross_linked():
    assert "distributed-dse.md" in (REPO / "docs" / "index.md").read_text()
    assert "distributed-dse.md" in (
        REPO / "docs" / "architecture" / "explore.md"
    ).read_text()
    assert "distributed-dse.md" in (REPO / "docs" / "api" / "explore.md").read_text()
    assert "distributed-dse.md" in (REPO / "mkdocs.yml").read_text()
    assert "explore.md" in GUIDE.read_text()
