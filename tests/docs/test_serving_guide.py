"""Pin the serving guide against the code it documents.

Dependency-free (no mkdocs, no asyncio servers): the checks parse the
guide and assert that every documented CLI flag is a real argparse option
of ``examples/serve_demo.py``, that the pinned SLO-report excerpts are
what the code actually prints, that the documented tuning knobs exist on
``GatewayConfig``, and that the guide is cross-linked from the pages that
promise it.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
GUIDE = REPO / "docs" / "guides" / "serving.md"
DEMO = REPO / "examples" / "serve_demo.py"

_COMMAND = re.compile(r"^(?:PYTHONPATH=\S+\s+)?python (\S+\.py)(.*)$")
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")


def guide_commands():
    commands = []
    for block in re.findall(r"```bash\n(.*?)```", GUIDE.read_text(), re.DOTALL):
        for line in block.strip().replace("\\\n", " ").splitlines():
            match = _COMMAND.match(line.strip())
            if match:
                commands.append((match.group(1), match.group(2)))
    return commands


def test_guide_exists_and_covers_the_contract():
    text = GUIDE.read_text()
    for topic in (
        "micro-batching",
        "deadline",
        "Open loop vs closed loop",
        "coordinated omission",
        "Overload",
        "bit-identical",
    ):
        assert topic in text, f"serving guide does not cover {topic!r}"


def test_every_documented_command_and_flag_is_real():
    commands = guide_commands()
    assert len(commands) >= 2, "guide lost its runnable commands"
    for target, args in commands:
        script = REPO / target
        assert script.is_file(), f"guide references missing {target}"
        source = script.read_text()
        for flag in _FLAG.findall(args):
            assert f'"{flag}"' in source, f"{target} has no argparse flag {flag}"


def test_slo_report_excerpts_match_the_code():
    """The pinned report lines are printed verbatim by loadgen/serve_demo."""
    text = GUIDE.read_text()
    loadgen = (REPO / "src" / "repro" / "serve" / "loadgen.py").read_text()
    for excerpt in (
        "Serving SLO report",
        "achieved throughput",
        "batching efficiency",
        "latency p50/p95/p99/max",
    ):
        assert excerpt in text, f"guide lost the excerpt {excerpt!r}"
        assert excerpt in loadgen, f"loadgen no longer prints {excerpt!r}"
    assert "determinism         : OK" in text
    assert "determinism         : OK" in DEMO.read_text()


def test_documented_tuning_knobs_exist_on_gateway_config():
    gateway = (REPO / "src" / "repro" / "serve" / "gateway.py").read_text()
    text = GUIDE.read_text()
    for knob in ("max_batch", "max_delay_ms", "queue_depth", "workers"):
        assert f"`{knob}`" in text, f"guide lost the tuning knob {knob}"
        assert f"{knob}:" in gateway, f"GatewayConfig lost the knob {knob}"


def test_wire_protocol_excerpt_matches_the_server():
    """The documented reply fields are the ones the server encodes."""
    server = (REPO / "src" / "repro" / "serve" / "server.py").read_text()
    text = GUIDE.read_text()
    for key in ('"verdict"', '"decision"', '"batch_size"', '"flush"'):
        assert key in text, f"guide lost the reply field {key}"
        assert key.strip('"') in server
    assert '"error": "overloaded"' in text
    assert '"overloaded"' in server


def test_serving_guide_is_cross_linked():
    assert "serving.md" in (REPO / "docs" / "index.md").read_text()
    assert (
        "serving.md" in (REPO / "docs" / "guides" / "choosing-a-backend.md").read_text()
    )
    assert "serving.md" in (REPO / "docs" / "architecture" / "serve.md").read_text()
    assert "serve.md" in GUIDE.read_text()
    assert "serving.md" in (REPO / "mkdocs.yml").read_text()
