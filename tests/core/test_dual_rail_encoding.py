"""Unit and property tests for dual-rail encoding and the gate mappings."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import umc_ll_library
from repro.core import (
    DualRailBuilder,
    SpacerPolarity,
    decode_pair,
    encode_bit,
    is_spacer,
    is_valid_codeword,
    spacer_word,
)
from repro.core.one_of_n import (
    decode_one_of_n,
    encode_one_of_n,
    is_spacer_one_of_n,
    is_valid_one_of_n,
    spacer_one_of_n,
)
from tests.conftest import run_dual_rail_operands


# ---------------------------------------------------------------------------
# Encoding helpers
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=1),
       st.sampled_from(list(SpacerPolarity)))
def test_encode_decode_roundtrip(value, polarity):
    pos, neg = encode_bit(value, polarity)
    assert decode_pair(pos, neg, polarity) == value
    assert is_valid_codeword(pos, neg)


@pytest.mark.parametrize("polarity", list(SpacerPolarity))
def test_spacer_word_decodes_to_none(polarity):
    pos, neg = spacer_word(polarity)
    assert decode_pair(pos, neg, polarity) is None
    assert is_spacer(pos, neg, polarity)


@pytest.mark.parametrize("polarity", list(SpacerPolarity))
def test_forbidden_state_raises(polarity):
    forbidden = 1 - polarity.spacer_rail_value
    with pytest.raises(ValueError):
        decode_pair(forbidden, forbidden, polarity)


def test_unknown_rails_raise():
    with pytest.raises(ValueError):
        decode_pair(None, 0)


def test_polarity_flip_is_involution():
    assert SpacerPolarity.ALL_ZERO.flipped().flipped() is SpacerPolarity.ALL_ZERO


# ---------------------------------------------------------------------------
# 1-of-n codes
# ---------------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=6), st.data(),
       st.sampled_from(list(SpacerPolarity)))
def test_one_of_n_roundtrip(n, data, polarity):
    symbol = data.draw(st.integers(min_value=0, max_value=n - 1))
    rails = encode_one_of_n(symbol, n, polarity)
    assert decode_one_of_n(rails, polarity) == symbol
    assert is_valid_one_of_n(rails, polarity)
    assert not is_spacer_one_of_n(rails, polarity)


def test_one_of_n_spacer_and_errors():
    assert decode_one_of_n(spacer_one_of_n(3)) is None
    with pytest.raises(ValueError):
        decode_one_of_n([1, 1, 0])
    with pytest.raises(ValueError):
        encode_one_of_n(5, 3)


# ---------------------------------------------------------------------------
# Dual-rail gate mappings, simulated through the handshake environment
# ---------------------------------------------------------------------------

def _two_input_circuit(op_name, negative_gates):
    builder = DualRailBuilder(f"dr_{op_name}", negative_gates=negative_gates)
    a = builder.input_bit("a")
    b = builder.input_bit("b")
    op = getattr(builder, op_name)
    result = op(a, b)
    result = builder.align_polarity(result, SpacerPolarity.ALL_ZERO)
    builder.output_bit("y", result)
    return builder.build()


@pytest.mark.parametrize("negative_gates", [True, False])
@pytest.mark.parametrize("op_name,func", [
    ("and_", lambda a, b: a & b),
    ("or_", lambda a, b: a | b),
    ("xor", lambda a, b: a ^ b),
])
def test_dual_rail_two_input_gates_match_boolean(op_name, func, negative_gates):
    library = umc_ll_library()
    circuit = _two_input_circuit(op_name, negative_gates)
    operands = [{"a": a, "b": b} for a, b in itertools.product([0, 1], repeat=2)]
    results = run_dual_rail_operands(circuit, library, operands)
    for operand, result in zip(operands, results):
        assert result.outputs["y"] == func(operand["a"], operand["b"])


def test_dual_rail_not_is_free_rail_swap():
    builder = DualRailBuilder("dr_not")
    a = builder.input_bit("a")
    builder.output_bit("y", builder.not_(a))
    circuit = builder.build()
    # No logic cells beyond the interface buffers.
    types = circuit.netlist.count_by_type()
    assert set(types) <= {"BUF"}
    results = run_dual_rail_operands(circuit, umc_ll_library(),
                                     [{"a": 0}, {"a": 1}])
    assert [r.outputs["y"] for r in results] == [1, 0]


def test_mixed_polarity_inputs_rejected():
    builder = DualRailBuilder("mixed")
    a = builder.input_bit("a", SpacerPolarity.ALL_ZERO)
    b = builder.input_bit("b", SpacerPolarity.ALL_ONE)
    with pytest.raises(Exception):
        builder.and_(a, b)


def test_spacer_inverter_flips_polarity_and_keeps_value():
    builder = DualRailBuilder("spinv")
    a = builder.input_bit("a")
    flipped = builder.spacer_inverter(a)
    assert flipped.polarity is SpacerPolarity.ALL_ONE
    back = builder.spacer_inverter(flipped)
    builder.output_bit("y", back)
    circuit = builder.build()
    results = run_dual_rail_operands(circuit, umc_ll_library(), [{"a": 1}, {"a": 0}])
    assert [r.outputs["y"] for r in results] == [1, 0]


def test_negative_gate_and_flips_polarity():
    builder = DualRailBuilder("neg", negative_gates=True)
    a, b = builder.input_bit("a"), builder.input_bit("b")
    out = builder.and_(a, b)
    assert out.polarity is SpacerPolarity.ALL_ONE
    positive = DualRailBuilder("pos", negative_gates=False)
    a, b = positive.input_bit("a"), positive.input_bit("b")
    assert positive.and_(a, b).polarity is SpacerPolarity.ALL_ZERO


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=6))
def test_dual_rail_and_tree_matches_python_all(bits):
    builder = DualRailBuilder("tree")
    signals = [builder.input_bit(f"x{i}") for i in range(len(bits))]
    result = builder.align_polarity(builder.and_tree(signals), SpacerPolarity.ALL_ZERO)
    builder.output_bit("y", result)
    circuit = builder.build()
    operand = {f"x{i}": bit for i, bit in enumerate(bits)}
    results = run_dual_rail_operands(circuit, umc_ll_library(), [operand])
    assert results[0].outputs["y"] == int(all(bits))


def test_c_element_latch_passes_data_through():
    builder = DualRailBuilder("latch")
    a = builder.input_bit("a")
    builder.output_bit("y", builder.c_element_latch(a))
    circuit = builder.build()
    results = run_dual_rail_operands(circuit, umc_ll_library(), [{"a": 1}, {"a": 0}])
    assert [r.outputs["y"] for r in results] == [1, 0]
