"""Tests for completion detection, grace periods, spacer analysis and requirements."""

import pytest

from repro.core import (
    REQUIREMENTS,
    DualRailBuilder,
    Responsibility,
    SpacerPolarity,
    add_completion_detection,
    analyse_circuit_spacers,
    completion_overhead_area,
    compute_grace_period,
    count_spacer_inverters,
    describe_requirements,
    requirement,
    requirements_by_responsibility,
)
from repro.core.completion import GracePeriod
from repro.sim import CompletionObserver, DualRailEnvironment, GateLevelSimulator


def _small_circuit(completion=None):
    """A two-input AND/OR pair with dual-rail outputs."""
    builder = DualRailBuilder("cdtest")
    a, b = builder.input_bit("a"), builder.input_bit("b")
    y = builder.align_polarity(builder.and_(a, b), SpacerPolarity.ALL_ZERO)
    z = builder.align_polarity(builder.or_(a, b), SpacerPolarity.ALL_ZERO)
    builder.output_bit("y", y)
    builder.output_bit("z", z)
    circuit = builder.build()
    if completion is not None:
        add_completion_detection(circuit, scheme=completion)
    return circuit


def test_reduced_completion_adds_done_output():
    circuit = _small_circuit("reduced")
    assert circuit.done_net == "done"
    assert "done" in circuit.netlist.primary_outputs
    info = circuit.metadata["completion"]
    assert info.scheme == "reduced"
    assert info.total_cells > 0


def test_full_completion_uses_c_elements():
    circuit = _small_circuit("full")
    types = circuit.netlist.count_by_type()
    assert any(name.startswith("C") and name[1:].isdigit() for name in types)


def test_reduced_scheme_is_cheaper_than_full(umc):
    reduced = _small_circuit("reduced")
    full = _small_circuit("full")
    assert completion_overhead_area(reduced, umc) < completion_overhead_area(full, umc)


def test_done_rises_after_outputs_valid_and_falls_after_spacer(umc):
    circuit = _small_circuit("reduced")
    sim = GateLevelSimulator(circuit.netlist, umc)
    observer = CompletionObserver("done")
    sim.add_monitor(observer)
    env = DualRailEnvironment(circuit, sim, grace_period=0.0)
    env.reset()
    result = env.infer({"a": 1, "b": 1})
    assert result.done_rise is not None
    assert result.done_rise >= result.t_start
    assert result.done_fall is not None
    assert result.done_fall > result.done_rise


def test_done_fall_delay_inserts_buffer_chain(umc):
    circuit = _small_circuit(None)
    info = add_completion_detection(circuit, scheme="reduced", done_fall_delay=200.0,
                                    library=umc)
    assert info.delay_cells >= 2
    # The delayed done must still rise and fall correctly.
    sim = GateLevelSimulator(circuit.netlist, umc)
    env = DualRailEnvironment(circuit, sim)
    env.reset()
    result = env.infer({"a": 0, "b": 1})
    assert result.done_rise is not None and result.done_fall is not None
    assert result.done_fall - result.t_start > 200.0


def test_grace_period_math():
    grace = GracePeriod(t_int=800.0, t_io=600.0, vdd=1.2)
    assert grace.td == pytest.approx(200.0)
    assert grace.t_done_fall == pytest.approx(800.0)
    no_slack = GracePeriod(t_int=500.0, t_io=600.0, vdd=1.2)
    assert no_slack.td == 0.0


def test_compute_grace_period_consistent_with_sta(umc):
    circuit = _small_circuit("reduced")
    grace = compute_grace_period(circuit, umc)
    assert grace.t_int >= 0 and grace.t_io > 0
    assert grace.t_done_fall >= grace.t_io


def test_invalid_completion_scheme_rejected():
    circuit = _small_circuit(None)
    with pytest.raises(ValueError):
        add_completion_detection(circuit, scheme="bogus")


def test_done_fall_delay_requires_library():
    circuit = _small_circuit(None)
    with pytest.raises(ValueError):
        add_completion_detection(circuit, scheme="reduced", done_fall_delay=100.0)


# ---------------------------------------------------------------------------
# Spacer-polarity analysis
# ---------------------------------------------------------------------------

def test_spacer_analysis_accepts_consistent_circuit():
    circuit = _small_circuit(None)
    analysis = analyse_circuit_spacers(circuit)
    assert analysis.ok
    assert analysis.pair_polarity["y"] is SpacerPolarity.ALL_ZERO


def test_spacer_analysis_flags_missing_spacer_inverter():
    builder = DualRailBuilder("broken", negative_gates=True)
    a, b = builder.input_bit("a"), builder.input_bit("b")
    # Negative-gate AND flips the polarity, but we (wrongly) declare the
    # output as all-zero spacer by exporting it directly.
    wrong = builder.and_(a, b)
    wrong_decl = type(wrong)(name=wrong.name, pos=wrong.pos, neg=wrong.neg,
                             polarity=SpacerPolarity.ALL_ZERO)
    builder.output_bit("y", wrong_decl)
    circuit = builder.build()
    analysis = analyse_circuit_spacers(circuit)
    assert not analysis.ok


def test_count_spacer_inverters_counts_tagged_cells():
    builder = DualRailBuilder("spinvcount")
    a = builder.input_bit("a")
    builder.output_bit("y", builder.spacer_inverter(a))
    assert count_spacer_inverters(builder.netlist) == 2


# ---------------------------------------------------------------------------
# Requirements catalogue
# ---------------------------------------------------------------------------

def test_requirements_catalogue_is_complete():
    assert len(REQUIREMENTS) == 6
    assert requirement(4).responsibility is Responsibility.TIMING_ASSUMPTION
    with pytest.raises(KeyError):
        requirement(7)


def test_requirements_grouping_and_description():
    grouped = requirements_by_responsibility()
    assert sum(len(v) for v in grouped.values()) == 6
    text = describe_requirements()
    assert "Requirement 1" in text and "Requirement 6" in text
