"""Direct-mapping expansion: functional equivalence against single-rail circuits."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import LogicBuilder, check_unate_only, umc_ll_library
from repro.core import ExpansionError, expand_to_dual_rail
from tests.conftest import run_dual_rail_operands, simulate_combinational


def _expand_and_compare(builder: LogicBuilder, input_names, output_names, patterns,
                        negative_gates=True):
    """Check single-rail vs expanded dual-rail results for the given patterns."""
    library = umc_ll_library()
    dual = expand_to_dual_rail(builder.netlist, negative_gates=negative_gates)
    report = check_unate_only(dual.netlist)
    assert report.ok, report.errors
    operands = [dict(zip(input_names, pattern)) for pattern in patterns]
    dual_results = run_dual_rail_operands(dual, library, operands)
    for operand, dual_result in zip(operands, dual_results):
        single = simulate_combinational(builder.netlist, library, operand, output_names)
        for out in output_names:
            assert dual_result.outputs[out] == single[out], (operand, out)


def test_expand_simple_and_or_network():
    builder = LogicBuilder("net1")
    a, b, c = builder.inputs(["a", "b", "c"])
    builder.output("y", builder.and_(builder.or_(a, b), c))
    _expand_and_compare(builder, ["a", "b", "c"], ["y"],
                        itertools.product([0, 1], repeat=3))


def test_expand_nand_nor_inverter_network():
    builder = LogicBuilder("net2")
    a, b, c = builder.inputs(["a", "b", "c"])
    builder.output("y", builder.nor(builder.nand(a, b), builder.not_(c)))
    _expand_and_compare(builder, ["a", "b", "c"], ["y"],
                        itertools.product([0, 1], repeat=3))


def test_expand_xor_network_uses_unate_cells_only():
    builder = LogicBuilder("net3")
    a, b = builder.inputs(["a", "b"])
    builder.output("y", builder.xor(a, b))
    builder.output("z", builder.xnor(a, b))
    _expand_and_compare(builder, ["a", "b"], ["y", "z"],
                        itertools.product([0, 1], repeat=2))


def test_expand_complex_gates():
    builder = LogicBuilder("net4")
    a, b, c, d = builder.inputs(["a", "b", "c", "d"])
    builder.output("y", builder.aoi22(a, b, c, d))
    builder.output("z", builder.oai21(a, b, c))
    _expand_and_compare(builder, ["a", "b", "c", "d"], ["y", "z"],
                        itertools.product([0, 1], repeat=4))


def test_expand_positive_gate_option():
    builder = LogicBuilder("net5")
    a, b = builder.inputs(["a", "b"])
    builder.output("y", builder.and_(a, b))
    _expand_and_compare(builder, ["a", "b"], ["y"],
                        itertools.product([0, 1], repeat=2), negative_gates=False)


def test_expansion_rejects_sequential_cells():
    builder = LogicBuilder("seq")
    d, clk = builder.inputs(["d", "clk"])
    builder.output("q", builder.dff(d, clk))
    with pytest.raises(ExpansionError):
        expand_to_dual_rail(builder.netlist)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4))
def test_expand_majority_gate_property(bits):
    builder = LogicBuilder("maj")
    a, b, c, d = builder.inputs(["a", "b", "c", "d"])
    builder.output("y", builder.or_(builder.maj3(a, b, c), d))
    library = umc_ll_library()
    dual = expand_to_dual_rail(builder.netlist)
    operand = dict(zip(["a", "b", "c", "d"], bits))
    dual_result = run_dual_rail_operands(dual, library, [operand])[0]
    expected = int((bits[0] + bits[1] + bits[2]) >= 2) | bits[3]
    assert dual_result.outputs["y"] == expected
