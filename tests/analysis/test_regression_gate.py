"""Benchmark regression gate semantics (repro.analysis.regression)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.regression import (
    BaselineFile,
    BaselineMetric,
    compare_to_baseline,
    filter_baseline,
    load_baseline,
    regressions,
)


def baseline(**metrics) -> BaselineFile:
    return BaselineFile(
        default_tolerance=0.30,
        metrics={name: metric for name, metric in metrics.items()},
    )


def test_within_band_passes_and_beyond_band_fails():
    base = baseline(tput=BaselineMetric("tput", 100.0))
    ok = compare_to_baseline({"tput": 71.0}, base)       # -29% < 30% band
    assert not regressions(ok)
    bad = compare_to_baseline({"tput": 69.0}, base)      # -31% > 30% band
    assert [c.name for c in regressions(bad)] == ["tput"]


def test_improvements_never_fail():
    base = baseline(tput=BaselineMetric("tput", 100.0))
    assert not regressions(compare_to_baseline({"tput": 500.0}, base))


def test_lower_is_better_direction():
    base = baseline(
        latency=BaselineMetric("latency", 100.0, direction="lower-is-better")
    )
    assert not regressions(compare_to_baseline({"latency": 129.0}, base))
    assert regressions(compare_to_baseline({"latency": 131.0}, base))


def test_per_metric_tolerance_overrides_default():
    base = baseline(
        wide=BaselineMetric("wide", 100.0, tolerance=0.65),
        tight=BaselineMetric("tight", 100.0),
    )
    comparisons = compare_to_baseline({"wide": 40.0, "tight": 40.0}, base)
    assert [c.name for c in regressions(comparisons)] == ["tight"]


def test_missing_tracked_metric_fails_the_gate():
    base = baseline(tput=BaselineMetric("tput", 100.0))
    failing = regressions(compare_to_baseline({}, base))
    assert [c.name for c in failing] == ["tput"]
    assert "missing" in failing[0].note


def test_untracked_current_metrics_are_reported_but_never_fail():
    base = baseline(tput=BaselineMetric("tput", 100.0))
    comparisons = compare_to_baseline({"tput": 100.0, "brand_new": 1.0}, base)
    extras = [c for c in comparisons if c.baseline is None]
    assert [c.name for c in extras] == ["brand_new"]
    assert not regressions(comparisons)


def test_invalid_metric_definitions_are_rejected():
    with pytest.raises(ValueError):
        BaselineMetric("x", 1.0, direction="sideways")
    with pytest.raises(ValueError):
        BaselineMetric("x", 1.0, tolerance=1.5)


def test_load_baseline_parses_the_committed_schema(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "default_tolerance": 0.25,
        "metrics": {
            "a": {"value": 10.0},
            "b": {"value": 5.0, "direction": "lower-is-better", "tolerance": 0.5},
        },
    }))
    parsed = load_baseline(path)
    assert parsed.default_tolerance == 0.25
    assert parsed.metrics["a"].direction == "higher-is-better"
    assert parsed.metrics["b"].tolerance == 0.5
    # The committed repo baseline must always parse.
    committed = load_baseline(
        Path(__file__).resolve().parents[2] / "benchmarks" / "baseline.json"
    )
    assert "batch_vs_event_speedup" in committed.metrics


def test_filter_baseline_scopes_one_metric_family():
    base = baseline(
        serve_tput=BaselineMetric("serve_tput", 100.0),
        serve_eff=BaselineMetric("serve_eff", 0.8),
        sim_tput=BaselineMetric("sim_tput", 50.0),
    )
    only = filter_baseline(base, only_prefix="serve_")
    assert set(only.metrics) == {"serve_tput", "serve_eff"}
    skipped = filter_baseline(base, skip_prefix="serve_")
    assert set(skipped.metrics) == {"sim_tput"}
    assert skipped.default_tolerance == base.default_tolerance
    # A serve-only bench record passes the serve-scoped gate even though it
    # misses every simulator metric (and vice versa).
    serve_run = {"serve_tput": 100.0, "serve_eff": 0.8}
    assert not regressions(compare_to_baseline(serve_run, only))
    assert regressions(compare_to_baseline(serve_run, base))  # unscoped fails
    assert not regressions(compare_to_baseline({"sim_tput": 50.0}, skipped))


def test_check_regression_cli_prefix_flags(tmp_path):
    """The gate CLI scopes comparisons and preserves out-of-scope updates."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_regression",
        Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py",
    )
    cli = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(cli)

    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({
        "default_tolerance": 0.3,
        "metrics": {
            "serve_throughput_rps": {"value": 100.0, "tolerance": 0.8},
            "sim_tput": {"value": 50.0},
        },
    }))
    bench_path = tmp_path / "BENCH_serve.json"
    bench_path.write_text(json.dumps({
        "metrics": {"serve_throughput_rps": 90.0}
    }))

    argv = ["--bench", str(bench_path), "--baseline", str(baseline_path)]
    assert cli.main(argv) == 1                      # unscoped: sim_tput missing
    assert cli.main(argv + ["--only-prefix", "serve_"]) == 0
    # --update scoped to serve_ must leave sim_tput untouched.
    assert cli.main(argv + ["--only-prefix", "serve_", "--update"]) == 0
    updated = json.loads(baseline_path.read_text())
    assert updated["metrics"]["sim_tput"]["value"] == 50.0
    assert updated["metrics"]["serve_throughput_rps"]["value"] == 90.0
    assert updated["metrics"]["serve_throughput_rps"]["tolerance"] == 0.8


def test_comparison_describe_lines_are_informative():
    base = baseline(tput=BaselineMetric("tput", 100.0))
    line = compare_to_baseline({"tput": 50.0}, base)[0].describe()
    assert "FAIL" in line and "tput" in line and "baseline=100" in line
