"""Tests for the parallel experiment runner and its determinism contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    WorkChunk,
    default_workload,
    make_chunks,
    resolve_jobs,
    run_figure3,
    run_latency_distribution,
    run_parallel,
    run_table1,
)
from repro.analysis.runner import _execute_chunk
from repro.circuits import full_diffusion_library, umc_ll_library


def _square(item):
    return item * item


def _draw(item, rng):
    # The result depends on both the work item and the chunk's RNG stream.
    return item + float(rng.random())


def test_run_parallel_preserves_order():
    items = list(range(17))
    assert run_parallel(_square, items, jobs=1) == [i * i for i in items]
    assert run_parallel(_square, items, jobs=4, chunk_size=3) == [i * i for i in items]


def test_run_parallel_empty_and_jobs_resolution():
    assert run_parallel(_square, [], jobs=4) == []
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_make_chunks_boundaries_are_jobs_independent():
    chunks = make_chunks(list(range(10)), chunk_size=4, seed=99)
    assert [c.items for c in chunks] == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]
    assert [c.start for c in chunks] == [0, 4, 8]
    assert all(c.seed == 99 for c in chunks)


def test_make_chunks_empty_grid_yields_no_chunks():
    """Chunk-boundary edge case: an empty work list (e.g. an empty DSE grid)."""
    assert make_chunks([], chunk_size=4) == []
    assert make_chunks([], chunk_size=1, seed=5) == []


def test_make_chunks_grid_smaller_than_chunk_size():
    """A grid smaller than chunk_size must become exactly one full chunk."""
    chunks = make_chunks([10, 20], chunk_size=8, seed=3)
    assert len(chunks) == 1
    assert chunks[0].index == 0
    assert chunks[0].start == 0
    assert chunks[0].items == (10, 20)


def test_make_chunks_rejects_invalid_chunk_size():
    with pytest.raises(ValueError):
        make_chunks([1, 2], chunk_size=0)


def test_run_parallel_grid_smaller_than_chunk_size_any_jobs():
    """jobs > number of chunks must not deadlock, reorder, or drop items."""
    items = [3, 1]
    expected = [9, 1]
    assert run_parallel(_square, items, jobs=1, chunk_size=10) == expected
    assert run_parallel(_square, items, jobs=4, chunk_size=10) == expected
    # Seeded variant: the single chunk's RNG stream is jobs-invariant too.
    assert run_parallel(_draw, items, jobs=1, chunk_size=10, seed=11) == \
        run_parallel(_draw, items, jobs=4, chunk_size=10, seed=11)


def test_chunk_rng_streams_are_independent_and_reproducible():
    a = WorkChunk(index=0, start=0, items=(1,), seed=7).rng()
    b = WorkChunk(index=1, start=1, items=(2,), seed=7).rng()
    a_again = WorkChunk(index=0, start=0, items=(1,), seed=7).rng()
    assert a.random() != b.random()
    assert a_again.random() == np.random.default_rng(
        np.random.SeedSequence([7, 0])
    ).random()
    assert WorkChunk(index=0, start=0, items=(1,), seed=None).rng() is None


def test_seeded_results_identical_for_any_jobs():
    """The satellite determinism contract: jobs=1 == jobs=4, bit for bit."""
    items = list(range(24))
    serial = run_parallel(_draw, items, jobs=1, chunk_size=5, seed=123)
    parallel = run_parallel(_draw, items, jobs=4, chunk_size=5, seed=123)
    assert serial == parallel


def test_execute_chunk_passes_rng_only_when_seeded():
    chunk = WorkChunk(index=0, start=0, items=(2, 3), seed=None)
    assert _execute_chunk(_square, chunk) == [4, 9]
    seeded = WorkChunk(index=0, start=0, items=(2,), seed=1)
    assert _execute_chunk(_draw, seeded)[0] > 2.0


# --------------------------------------------------------------------------
# Experiment-level determinism: the sweeps built on the runner.
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_workload():
    return default_workload(num_features=2, clauses_per_polarity=2, num_operands=6)


def test_latency_distribution_jobs_invariant(tiny_workload):
    library = umc_ll_library()
    serial = run_latency_distribution(tiny_workload, library, jobs=1, chunk_size=2)
    parallel = run_latency_distribution(tiny_workload, library, jobs=4, chunk_size=2)
    assert [r.t_s_to_v for r in serial] == [r.t_s_to_v for r in parallel]
    assert [r.one_of_n_outputs for r in serial] == [r.one_of_n_outputs for r in parallel]


def test_figure3_backend_and_jobs_invariant(tiny_workload):
    library = full_diffusion_library()
    voltages = (0.5, 1.2)
    event = run_figure3(tiny_workload, voltages=voltages, library=library,
                        operands_per_point=3)
    batch = run_figure3(tiny_workload, voltages=voltages, library=library,
                        operands_per_point=3, backend="batch", jobs=2)
    assert [(p.vdd, p.avg_latency_ps, p.max_latency_ps, p.functional, p.correct)
            for p in event] == \
           [(p.vdd, p.avg_latency_ps, p.max_latency_ps, p.functional, p.correct)
            for p in batch]


def test_table1_backend_and_jobs_invariant(tiny_workload):
    libraries = [umc_ll_library()]
    rows_event, _ = run_table1(tiny_workload, libraries=libraries)
    rows_batch, _ = run_table1(tiny_workload, libraries=libraries,
                               backend="batch", jobs=2)
    assert len(rows_event) == len(rows_batch) == 2
    for event_row, batch_row in zip(rows_event, rows_batch):
        assert event_row.design == batch_row.design
        assert event_row.avg_latency_ps == batch_row.avg_latency_ps
        assert event_row.avg_power_uw == batch_row.avg_power_uw
        assert event_row.extra["correctness"] == batch_row.extra["correctness"]
