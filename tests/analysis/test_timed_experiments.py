"""Harness-level tests for ``timing_backend=`` (the vectorized timing path).

The acceptance contract: ``run_table1`` / ``run_figure3`` produce identical
tables and sweep values (within the documented float re-association
tolerance) with ``timing_backend="batch"`` vs the event oracle, parallel
runs are bit-identical to serial runs, and the DSE evaluator's timed points
are backend-agnostic (batch == bitpack field for field).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    default_workload,
    measure_dual_rail,
    run_figure3,
    run_latency_distribution,
    run_table1,
)
from repro.explore.evaluate import SMOKE_SETTINGS, evaluate_point
from repro.explore.grid import DesignPointSpec
from repro.explore.store import point_key

RTOL = 1e-9

#: Table-I numeric columns compared between the event and timed paths.
TABLE1_NUMERIC = (
    "cell_area", "sequential_area", "avg_power_uw", "leakage_power_nw",
    "avg_latency_ps", "max_latency_ps", "t_v_to_s_ps", "avg_inferences_millions",
)


@pytest.fixture(scope="module")
def workload():
    return default_workload(num_features=4, clauses_per_polarity=8, num_operands=8)


def test_measure_dual_rail_timed_matches_event(workload, umc):
    event = measure_dual_rail(workload, umc, timing_backend="event")
    timed = measure_dual_rail(workload, umc, timing_backend="batch")
    assert timed.verdicts == event.verdicts
    assert timed.correctness == event.correctness
    assert timed.grace.td == event.grace.td
    assert timed.latency.samples == event.latency.samples
    for attr in ("average", "maximum", "minimum", "p50", "p95", "reset_time"):
        assert getattr(timed.latency, attr) == pytest.approx(
            getattr(event.latency, attr), rel=RTOL
        ), attr
    np.testing.assert_allclose(timed.latencies_ps, event.latencies_ps, rtol=RTOL)
    assert timed.power.energy_per_operation_fj == pytest.approx(
        event.power.energy_per_operation_fj, rel=RTOL
    )
    assert timed.power.total_uw == pytest.approx(event.power.total_uw, rel=RTOL)
    assert timed.power.window_ps == pytest.approx(event.power.window_ps, rel=RTOL)
    assert timed.throughput_millions == pytest.approx(
        event.throughput_millions, rel=RTOL
    )


def test_run_table1_identical_with_timed_backend(workload):
    rows_event, _ = run_table1(workload, timing_backend="event")
    rows_timed, _ = run_table1(workload, timing_backend="batch", jobs=2)
    assert len(rows_event) == len(rows_timed) == 4
    for event_row, timed_row in zip(rows_event, rows_timed):
        assert event_row.technology == timed_row.technology
        assert event_row.design == timed_row.design
        for column in TABLE1_NUMERIC:
            expected = getattr(event_row, column)
            actual = getattr(timed_row, column)
            if expected is None:
                assert actual is None
            else:
                assert actual == pytest.approx(expected, rel=RTOL), column
        assert timed_row.extra["correctness"] == event_row.extra["correctness"]
        assert timed_row.extra["energy_per_inference_fj"] == pytest.approx(
            event_row.extra["energy_per_inference_fj"], rel=RTOL
        )


@pytest.mark.parametrize("timing_backend", ["batch", "bitpack"])
def test_run_figure3_identical_with_timed_backend(workload, timing_backend):
    voltages = (0.4, 0.6, 1.2)  # 0.4 V is below the UMC floor: a NaN point
    kwargs = dict(workload=workload, voltages=voltages, operands_per_point=4)
    from repro.circuits import umc_ll_library

    library = umc_ll_library()
    points_event = run_figure3(library=library, **kwargs)
    points_timed = run_figure3(
        library=library, timing_backend=timing_backend, jobs=2, **kwargs
    )
    for event_point, timed_point in zip(points_event, points_timed):
        assert event_point.vdd == timed_point.vdd
        assert event_point.functional == timed_point.functional
        assert event_point.correct == timed_point.correct
        if math.isnan(event_point.avg_latency_ps):
            assert math.isnan(timed_point.avg_latency_ps)
        else:
            assert timed_point.avg_latency_ps == pytest.approx(
                event_point.avg_latency_ps, rel=RTOL
            )
            assert timed_point.max_latency_ps == pytest.approx(
                event_point.max_latency_ps, rel=RTOL
            )


def test_latency_distribution_timed_jobs_bit_identity(workload, umc):
    """jobs=1 ≡ jobs=N through run_parallel: every field, bit for bit."""
    serial = run_latency_distribution(
        workload, umc, timing_backend="batch", chunk_size=3, jobs=1
    )
    parallel = run_latency_distribution(
        workload, umc, timing_backend="batch", chunk_size=3, jobs=3
    )
    assert len(serial) == len(parallel) == workload.num_operands
    for a, b in zip(serial, parallel):
        assert a.t_start == b.t_start
        assert a.t_s_to_v == b.t_s_to_v
        assert a.t_v_to_s == b.t_v_to_s
        assert a.t_internal_reset == b.t_internal_reset
        assert a.done_rise == b.done_rise and a.done_fall == b.done_fall
        assert a.outputs == b.outputs and a.one_of_n_outputs == b.one_of_n_outputs


def test_latency_distribution_timed_matches_event_per_operand(workload, umc):
    event = run_latency_distribution(workload, umc)
    timed = run_latency_distribution(workload, umc, timing_backend="batch")
    assert len(event) == len(timed)
    for ev, tm in zip(event, timed):
        assert tm.t_s_to_v == pytest.approx(ev.t_s_to_v, rel=RTOL)
        assert tm.t_v_to_s == pytest.approx(ev.t_v_to_s, rel=RTOL)
        assert tm.t_internal_reset == pytest.approx(ev.t_internal_reset, rel=RTOL)
        assert tm.outputs == ev.outputs
        assert tm.one_of_n_outputs == ev.one_of_n_outputs


def test_timed_path_raises_on_output_stuck_at_spacer(umc):
    """An output that never asserts is a ProtocolViolation, as in the event env.

    The reduced-CD ``done`` signal does not necessarily observe every
    output, so the timed path enforces the output-codeword obligations
    directly (``_check_output_protocol``), mirroring
    ``DualRailEnvironment._outputs_valid_time``.
    """
    from repro.analysis.measure import _check_output_protocol
    from repro.core.dual_rail import DualRailBuilder
    from repro.sim.backends import BatchBackend
    from repro.sim.monitors import ProtocolViolation

    builder = DualRailBuilder("stuck")
    x = builder.input_bit("x")
    builder.output_bit("y", x)
    circuit = builder.build()
    backend = BatchBackend(circuit.netlist, umc)
    spacer = {x.pos: 0, x.neg: 0}
    # Valid phase never leaves spacer on the input, so the output port is
    # stuck at spacer: the event environment would raise, and so must we.
    timed = backend.run_timed({x.pos: [0, 0], x.neg: [0, 0]}, spacer)
    with pytest.raises(ProtocolViolation, match="never reached the valid state"):
        _check_output_protocol(circuit, timed)
    # A proper codeword per sample passes.
    timed_ok = backend.run_timed({x.pos: [1, 0], x.neg: [0, 1]}, spacer)
    _check_output_protocol(circuit, timed_ok)


def test_unknown_timing_backend_is_rejected(workload, umc):
    with pytest.raises(ValueError):
        measure_dual_rail(workload, umc, timing_backend="sta")
    with pytest.raises(ValueError):
        run_table1(workload, timing_backend="nope")
    with pytest.raises(ValueError):
        run_latency_distribution(workload, umc, timing_backend="nope")


@pytest.fixture(scope="module")
def dse_spec():
    return DesignPointSpec(
        dataset="noisy-xor", clauses_per_polarity=4, booleanizer_levels=1,
        library="UMC LL", style="dual-rail-reduced", vdd=None,
    )


def test_dse_timed_point_matches_event_and_times_full_stream(dse_spec):
    event_point = evaluate_point(dse_spec, SMOKE_SETTINGS, backend="event")
    timed_point = evaluate_point(
        dse_spec, SMOKE_SETTINGS, backend="batch", timing_backend="batch"
    )
    assert timed_point.timed_operands == SMOKE_SETTINGS.operands
    assert timed_point.timing_backend == "batch"
    assert timed_point.hardware_correctness == event_point.hardware_correctness
    for metric in ("mean_latency_ps", "p95_latency_ps", "max_latency_ps",
                   "energy_per_inference_fj", "throughput_mops"):
        assert timed_point.metric(metric) == pytest.approx(
            event_point.metric(metric), rel=RTOL
        ), metric


def test_dse_timed_point_is_backend_agnostic(dse_spec):
    """batch and bitpack timed points agree field for field."""
    via_batch = evaluate_point(
        dse_spec, SMOKE_SETTINGS, backend="batch", timing_backend="batch"
    ).to_dict()
    via_bitpack = evaluate_point(
        dse_spec, SMOKE_SETTINGS, backend="bitpack", timing_backend="bitpack"
    ).to_dict()
    for record in (via_batch, via_bitpack):
        record.pop("backend")
        record.pop("timing_backend")
    assert via_batch == via_bitpack


def test_dse_timed_normalizes_functional_backend(dse_spec):
    """Under a vectorized timing_backend the functional backend is moot.

    The timed engine's own value planes answer every functional question,
    so `backend` is normalized to `timing_backend` — provenance names the
    engine that actually ran, and equivalent sweeps share store entries.
    """
    point = evaluate_point(
        dse_spec, SMOKE_SETTINGS, backend="bitpack", timing_backend="batch"
    )
    assert point.backend == "batch"
    assert point.timing_backend == "batch"


def test_store_key_separates_timing_backends(dse_spec, umc):
    """A timed point and an event-timed point are different measurements."""
    base = point_key(dse_spec, SMOKE_SETTINGS, umc, "batch")
    explicit_event = point_key(
        dse_spec, SMOKE_SETTINGS, umc, "batch", timing_backend="event"
    )
    timed = point_key(dse_spec, SMOKE_SETTINGS, umc, "batch", timing_backend="batch")
    assert base == explicit_event  # pre-existing stores keep serving event points
    assert timed != base
