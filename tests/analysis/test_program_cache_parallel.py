"""Program-cache behaviour across the parallel experiment harnesses.

The acceptance contract of the compiled-IR cache at the harness level:
``run_latency_distribution`` with ``jobs=2`` compiles each unique netlist
exactly once (trace-verified — the parent pre-warms, the workers cache-hit),
and the cached path is bit-identical to the uncached seed path for any
``jobs`` value.
"""

from __future__ import annotations

import pytest

from repro.analysis import default_workload, run_latency_distribution
from repro.analysis.measure import resolve_library
from repro.obs import trace


@pytest.fixture(scope="module")
def workload():
    return default_workload(num_features=3, clauses_per_polarity=4, num_operands=8)


def _latencies(results):
    return [r.t_s_to_v for r in results]


def test_parallel_cached_run_compiles_exactly_once(tmp_path, workload, umc):
    with trace.capture() as captured:
        results = run_latency_distribution(
            workload, umc, jobs=2, chunk_size=2, timing_backend="batch",
            program_cache=str(tmp_path),
        )
    compiles = [r for r in captured.records if r.name == "backend.compile"]
    assert len(compiles) == 1  # the parent pre-warm; every chunk worker hits
    loads = [r for r in captured.records if r.name == "program.cache.load"]
    # the pre-warm's cold probe plus one warm load per chunk (4 chunks of 2)
    assert sum(1 for r in loads if r.attrs.get("hit")) == 4
    assert len(results) == workload.num_operands
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_cached_path_bit_identical_across_jobs(tmp_path, workload, umc):
    seed = run_latency_distribution(
        workload, umc, jobs=1, chunk_size=2, timing_backend="batch"
    )
    serial = run_latency_distribution(
        workload, umc, jobs=1, chunk_size=2, timing_backend="batch",
        program_cache=str(tmp_path),
    )
    parallel = run_latency_distribution(
        workload, umc, jobs=3, chunk_size=2, timing_backend="batch",
        program_cache=str(tmp_path),
    )
    assert _latencies(serial) == _latencies(seed)
    assert _latencies(parallel) == _latencies(seed)


def test_event_backend_ignores_the_cache(tmp_path, workload, umc):
    resolve_library(umc)
    cached = run_latency_distribution(
        workload, umc, jobs=1, timing_backend="event",
        program_cache=str(tmp_path),
    )
    seed = run_latency_distribution(workload, umc, jobs=1, timing_backend="event")
    assert _latencies(cached) == _latencies(seed)
    assert list(tmp_path.glob("*.json")) == []  # nothing compiled, nothing stored
