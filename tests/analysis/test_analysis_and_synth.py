"""Tests for the analysis layer (latency, throughput, distributions, tables) and synthesis flow."""


import numpy as np
import pytest

from repro.analysis import (
    Histogram,
    Table1Row,
    comparator_decision_depth,
    dual_rail_throughput,
    format_figure3,
    format_histogram,
    format_table1,
    latency_histogram,
    mean_latency_by_depth,
    operand_distributions,
    summarize_latencies,
    summarize_slo,
    synchronous_throughput,
    throughput_from_period,
)
from repro.analysis.tables import Figure3Point
from repro.circuits import LogicBuilder, umc_ll_library
from repro.datapath import DualRailDatapath, DatapathConfig
from repro.sim.handshake import DualRailInferenceResult
from repro.synth import MappingError, area_report, leakage_report, map_to_library, synthesize
from repro.tm import InferenceModel

LIB = umc_ll_library()


def _result(latency, reset=100.0):
    return DualRailInferenceResult(
        operand={}, outputs={}, one_of_n_outputs={}, t_start=0.0,
        t_s_to_v=latency, t_v_to_s=reset, t_internal_reset=reset,
    )


def test_latency_summary_statistics():
    results = [_result(l) for l in (100.0, 200.0, 300.0, 400.0)]
    summary = summarize_latencies(results)
    assert summary.average == pytest.approx(250.0)
    assert summary.maximum == 400.0 and summary.minimum == 100.0
    assert summary.p50 in (200.0, 300.0)
    assert summary.reset_time == 100.0
    assert summary.early_propagation_gain == pytest.approx(400.0 / 250.0)
    with pytest.raises(ValueError):
        summarize_latencies([])


def test_slo_summary_percentiles_and_scaling():
    values = [float(v) for v in range(1, 101)]  # 1..100
    slo = summarize_slo(values)
    assert slo.samples == 100
    assert slo.mean == pytest.approx(50.5)
    assert slo.minimum == 1.0 and slo.maximum == 100.0
    # Rank-order estimator on 1..100: pXX lands on an actual sample.
    assert slo.p50 in (50.0, 51.0)
    assert slo.p95 in (95.0, 96.0)
    assert slo.p99 in (99.0, 100.0)
    ms = slo.scaled(1e3)
    assert ms.samples == 100
    assert ms.p95 == pytest.approx(slo.p95 * 1e3)
    assert ms.maximum == pytest.approx(1e5)
    with pytest.raises(ValueError):
        summarize_slo([])


def test_slo_summary_single_sample_is_degenerate():
    slo = summarize_slo([42.0])
    assert (slo.p50, slo.p95, slo.p99) == (42.0, 42.0, 42.0)
    assert slo.minimum == slo.maximum == slo.mean == 42.0


def test_throughput_computations():
    assert throughput_from_period(1000.0).inferences_per_second == pytest.approx(1e9)
    assert synchronous_throughput(2000.0).millions_per_second == pytest.approx(500.0)
    results = [_result(300.0, reset=200.0), _result(500.0, reset=100.0)]
    summary = dual_rail_throughput(results, grace_period=150.0)
    # periods: 300+200=500 and 500+150=650 -> mean 575
    assert summary.period_ps == pytest.approx(575.0)
    with pytest.raises(ValueError):
        throughput_from_period(0.0)
    with pytest.raises(ValueError):
        dual_rail_throughput([])


def test_comparator_decision_depth():
    assert comparator_decision_depth(8, 0, 4) == 1
    assert comparator_decision_depth(3, 2, 4) == 4
    assert comparator_decision_depth(5, 5, 4) == 4
    assert comparator_decision_depth(4, 3, 4) == 2


def test_operand_distributions_and_histograms():
    model = InferenceModel.random(8, 4, seed=5)
    samples = np.random.default_rng(5).integers(0, 2, size=(30, 4))
    dists = operand_distributions(model, samples, count_width=4)
    assert set(dists) == {"positive_votes", "negative_votes", "vote_difference",
                          "decision_depth"}
    assert dists["decision_depth"].total == 30
    assert 1 <= dists["decision_depth"].mean() <= 4
    text = format_histogram(dists["vote_difference"].counts, label="diff")
    assert "diff=" in text


def test_latency_histogram_and_depth_correlation():
    results = [_result(l) for l in (120.0, 130.0, 380.0)]
    hist = latency_histogram(results, bin_width_ps=100.0)
    assert hist.total == 3
    pairs = [(1, 100.0), (1, 120.0), (3, 300.0)]
    by_depth = mean_latency_by_depth(pairs)
    assert by_depth[1] == pytest.approx(110.0)
    assert by_depth[3] == pytest.approx(300.0)
    with pytest.raises(ValueError):
        latency_histogram(results, bin_width_ps=0.0)


def test_histogram_helper():
    hist = Histogram()
    for value in (1, 1, 2):
        hist.add(value)
    assert hist.total == 3
    assert hist.probability(1) == pytest.approx(2 / 3)
    assert hist.as_sorted_items() == [(1, 2), (2, 1)]


def test_table_formatting():
    row = Table1Row(
        technology="UMC LL", design="Single-rail", cell_area=1800.0,
        sequential_area=1300.0, avg_power_uw=470.0, leakage_power_nw=75.0,
        avg_latency_ps=2100.0, max_latency_ps=2100.0, t_v_to_s_ps=None,
        avg_inferences_millions=480.0,
    )
    text = format_table1([row])
    assert "Technology" in text and "UMC LL" in text and "--" in text
    fig = format_figure3([Figure3Point(vdd=0.3, avg_latency_ps=1e5, max_latency_ps=2e5,
                                       functional=True, correct=True)])
    assert "0.30" in fig


# ---------------------------------------------------------------------------
# Synthesis flow
# ---------------------------------------------------------------------------

def test_area_and_leakage_reports():
    builder = LogicBuilder("rep")
    a, b = builder.input("a"), builder.input("b")
    clk = builder.input("clk")
    builder.output("y", builder.dff(builder.and_(a, b), clk))
    area = area_report(builder.netlist, LIB)
    assert area.total > 0
    assert area.sequential == pytest.approx(LIB.cell("DFF").area)
    assert area.combinational == pytest.approx(area.total - area.sequential)
    leak = leakage_report(builder.netlist, LIB)
    assert leak.total_nw > 0


def test_synthesize_dual_rail_is_unate_checked():
    datapath = DualRailDatapath(DatapathConfig(num_features=2, clauses_per_polarity=2))
    result = synthesize(datapath.circuit.netlist, LIB, enforce_unate=True)
    assert result.validation.ok
    assert result.clock_period is None
    assert result.area.sequential > 0


def test_map_to_library_raises_for_unknown_cells():
    builder = LogicBuilder("unmappable")
    d, clk = builder.input("d"), builder.input("clk")
    builder.output("q", builder.dff(d, clk))
    from repro.circuits import CellLibrary, CellModel, VoltageModel
    tiny = CellLibrary(
        "tiny",
        {"INV": CellModel("INV", 1, 1, 1, 1, 1, 1)},
        VoltageModel(),
    )
    with pytest.raises(MappingError):
        map_to_library(builder.netlist, tiny)
