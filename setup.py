"""Setuptools shim for environments whose pip lacks PEP 517 editable-install support."""
from setuptools import setup

setup()
